//! CI validator for emitted trace artifacts.
//!
//! Usage: `check_trace <trace.json> [<perf_summary.json>] [--require
//! stage1,stage2,...]`
//!
//! Checks that the Chrome trace parses as JSON with balanced,
//! properly-nested begin/end events, and that the perf summary (if
//! given) parses and contains every required stage with a non-zero
//! count. The default required set is the end-to-end WISE pipeline:
//! feature extraction, labeling, training, selection, format conversion
//! and SpMV.

use wise_trace::export::{json, validate_chrome_trace};

const DEFAULT_REQUIRED: &[&str] = &[
    "features.extract",
    "label.corpus",
    "train.registry",
    "pipeline.select",
    "kernel.convert",
    "kernel.spmv",
];

fn fail(msg: &str) -> ! {
    eprintln!("check_trace: FAIL: {msg}");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<&String> = Vec::new();
    let mut required: Vec<String> = DEFAULT_REQUIRED.iter().map(|s| s.to_string()).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--require" {
            let list = it.next().unwrap_or_else(|| fail("--require needs a comma-separated list"));
            required = list.split(',').map(|s| s.trim().to_string()).collect();
        } else {
            paths.push(a);
        }
    }
    let [trace_path, rest @ ..] = paths.as_slice() else {
        fail("usage: check_trace <trace.json> [<perf_summary.json>] [--require a,b,...]");
    };

    let trace_text = std::fs::read_to_string(trace_path)
        .unwrap_or_else(|e| fail(&format!("cannot read {trace_path}: {e}")));
    match validate_chrome_trace(&trace_text) {
        Ok(0) => fail("trace is valid JSON but contains no complete spans"),
        Ok(spans) => println!("check_trace: {trace_path}: OK ({spans} balanced spans)"),
        Err(e) => fail(&format!("{trace_path}: {e}")),
    }

    if let [summary_path] = rest {
        let summary_text = std::fs::read_to_string(summary_path)
            .unwrap_or_else(|e| fail(&format!("cannot read {summary_path}: {e}")));
        let doc =
            json::parse(&summary_text).unwrap_or_else(|e| fail(&format!("{summary_path}: {e}")));
        let stages = doc
            .get("stages")
            .and_then(|v| v.as_object())
            .unwrap_or_else(|| fail(&format!("{summary_path}: missing stages object")));
        for name in &required {
            let count = stages
                .get(name.as_str())
                .and_then(|s| s.get("count"))
                .and_then(|c| c.as_f64())
                .unwrap_or(0.0);
            if count < 1.0 {
                fail(&format!("{summary_path}: required stage '{name}' missing or empty"));
            }
        }
        println!(
            "check_trace: {summary_path}: OK ({} stages, all {} required present)",
            stages.len(),
            required.len()
        );
    }
}
