//! Exporters: Chrome trace-event JSON, the human-readable run report,
//! and the machine-readable `perf_summary.json`.
//!
//! The Chrome format is the subset understood by Perfetto and
//! `chrome://tracing`: an object with a `traceEvents` array of `B`/`E`
//! duration events, `C` counter events and `i` instant events, with
//! timestamps in *microseconds*. JSON is emitted by hand — this crate
//! is zero-dependency — and [`json`] provides a small parser so the
//! `check_trace` validator (and tests) can verify emitted files without
//! serde.

use crate::ledger::HostFingerprint;
use crate::span::{Event, Phase};
use crate::Summary;
use std::fmt::Write as _;
use std::path::Path;

/// Escapes `s` into a JSON string literal body (shared with the
/// [`crate::ledger`] emitter).
pub(crate) fn write_escaped(out: &mut String, s: &str) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Microsecond timestamp with nanosecond precision kept as decimals.
fn us(ts_ns: u64) -> String {
    format!("{}.{:03}", ts_ns / 1_000, ts_ns % 1_000)
}

/// Renders a flushed event stream as Chrome trace-event JSON. Spans
/// become `B`/`E` pairs, counters become `C` events (chartable as
/// counter tracks in Perfetto), duration samples become `i` instant
/// events carrying their nanosecond value in `args`.
pub fn chrome_trace_json(events: &[Event]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 64);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    for e in events {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("{\"name\":\"");
        write_escaped(&mut out, e.name);
        let _ =
            write!(out, "\",\"cat\":\"wise\",\"pid\":1,\"tid\":{},\"ts\":{}", e.tid, us(e.ts_ns));
        match e.phase {
            Phase::Begin => out.push_str(",\"ph\":\"B\"}"),
            Phase::End => out.push_str(",\"ph\":\"E\"}"),
            Phase::Counter => {
                out.push_str(",\"ph\":\"C\",\"args\":{\"");
                write_escaped(&mut out, e.name);
                let _ = write!(out, "\":{}}}}}", e.value);
            }
            Phase::Sample => {
                let _ = write!(out, ",\"ph\":\"i\",\"s\":\"t\",\"args\":{{\"ns\":{}}}}}", e.value);
            }
            Phase::Pmu(kind) => {
                // Counter track per (span, counter): chartable next to
                // the span's duration track in Perfetto.
                let _ = write!(
                    out,
                    ",\"ph\":\"C\",\"args\":{{\"pmu.{}\":{}}}}}",
                    kind.label(),
                    e.value
                );
            }
        }
    }
    out.push_str("]}");
    out
}

/// Renders `perf_summary.json` with the current process's
/// [`HostFingerprint`]: stage → `{count, p50, p95, min, max, total}`
/// (nanoseconds), summed counters, and a `host` object — the artifact
/// BENCH trajectories diff across PRs. Summaries from different hosts
/// (or different `WISE_THREADS`/`WISE_POOL` settings) carry the
/// difference in-band instead of relying on out-of-band notes.
pub fn perf_summary_json(summary: &Summary) -> String {
    perf_summary_json_with(summary, &HostFingerprint::detect())
}

/// [`perf_summary_json`] with an explicit host fingerprint (tests, or
/// bins that already detected one with the rustc version filled in).
pub fn perf_summary_json_with(summary: &Summary, host: &HostFingerprint) -> String {
    let mut out = String::from("{\"host\":");
    host.write_json(&mut out);
    out.push_str(",\"pmu_status\":\"");
    write_escaped(&mut out, &summary.pmu_status);
    out.push_str("\",\"stages\":{");
    let mut first = true;
    for (name, st) in &summary.stages {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('"');
        write_escaped(&mut out, name);
        let _ = write!(
            out,
            "\":{{\"count\":{},\"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{},\"min_ns\":{},\"max_ns\":{},\"total_ns\":{},\"self_total_ns\":{}",
            st.count, st.p50_ns, st.p95_ns, st.p99_ns, st.min_ns, st.max_ns, st.total_ns,
            st.self_total_ns
        );
        if let Some(pmu) = &st.pmu {
            let _ = write!(
                out,
                ",\"pmu\":{{\"samples\":{},\"cycles\":{},\"instructions\":{},\"llc_loads\":{},\"llc_misses\":{},\"branch_misses\":{}}}",
                pmu.samples, pmu.cycles, pmu.instructions, pmu.llc_loads, pmu.llc_misses,
                pmu.branch_misses
            );
        }
        // Mergeable sketch alongside the exact percentiles, so
        // summaries from separate runs can be combined post hoc.
        let _ = write!(out, ",\"sketch\":{}", st.sketch.to_json());
        out.push('}');
    }
    out.push_str("},\"counters\":{");
    let mut first = true;
    for (name, value) in &summary.counters {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('"');
        write_escaped(&mut out, name);
        let _ = write!(out, "\":{value}");
    }
    out.push_str("}}");
    out
}

fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=9_999 => format!("{ns}ns"),
        10_000..=9_999_999 => format!("{:.1}us", ns as f64 / 1e3),
        10_000_000..=9_999_999_999 => format!("{:.1}ms", ns as f64 / 1e6),
        _ => format!("{:.2}s", ns as f64 / 1e9),
    }
}

/// Stages in run-report order: a DFS over the dominant-parent tree
/// (children under their parent, name-sorted at each level), yielding
/// `(name, depth)`. Stages whose parent chain is degenerate (a cycle in
/// a pathological stream) fall back to depth 0 at the end.
fn report_order(summary: &Summary) -> Vec<(&str, usize)> {
    let mut children: std::collections::BTreeMap<&str, Vec<&str>> =
        std::collections::BTreeMap::new();
    let mut roots: Vec<&str> = Vec::new();
    for (name, st) in &summary.stages {
        match st.parent.as_deref().filter(|p| *p != name && summary.stages.contains_key(*p)) {
            Some(parent) => children.entry(parent).or_default().push(name),
            None => roots.push(name),
        }
    }
    let mut order = Vec::with_capacity(summary.stages.len());
    let mut seen = std::collections::BTreeSet::new();
    let mut stack: Vec<(&str, usize)> = roots.into_iter().rev().map(|n| (n, 0)).collect();
    while let Some((name, depth)) = stack.pop() {
        if !seen.insert(name) {
            continue;
        }
        order.push((name, depth));
        if let Some(kids) = children.get(name) {
            for &kid in kids.iter().rev() {
                stack.push((kid, depth + 1));
            }
        }
    }
    for name in summary.stages.keys() {
        if seen.insert(name.as_str()) {
            order.push((name.as_str(), 0));
        }
    }
    order
}

/// Renders the human-readable run report: one line per stage, nested
/// under its dominant parent span and indented by depth, with both
/// total and self (child-subtracted) time, p50/p95/p99/max, a log2
/// spark-line, then the hardware-counter section (when any stage
/// carried PMU deltas), the explicit `pmu:` status marker, and the
/// counters.
pub fn run_report(summary: &Summary) -> String {
    let mut out = String::from("== wise-trace run report ==\n");
    if summary.stages.is_empty() && summary.counters.is_empty() {
        out.push_str("(no events recorded)\n");
        if !summary.pmu_status.is_empty() {
            let _ = writeln!(out, "pmu: {}", summary.pmu_status);
        }
        return out;
    }
    let order = report_order(summary);
    let name_w =
        order.iter().map(|(n, depth)| n.len() + 2 * depth).max().unwrap_or(5).max("stage".len());
    let _ = writeln!(
        out,
        "{:<name_w$} {:>7} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}  log2-spread",
        "stage", "count", "total", "self", "p50", "p95", "p99", "max"
    );
    for &(name, depth) in &order {
        let st = &summary.stages[name];
        let label = format!("{}{}", "  ".repeat(depth), name);
        let _ = writeln!(
            out,
            "{:<name_w$} {:>7} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}  {}",
            label,
            st.count,
            fmt_ns(st.total_ns),
            fmt_ns(st.self_total_ns),
            fmt_ns(st.p50_ns),
            fmt_ns(st.p95_ns),
            fmt_ns(st.p99_ns),
            fmt_ns(st.max_ns),
            st.hist.sparkline()
        );
    }
    let pmu_stages: Vec<(&str, &crate::PmuStats)> = order
        .iter()
        .filter_map(|&(name, _)| summary.stages[name].pmu.as_ref().map(|p| (name, p)))
        .collect();
    if !pmu_stages.is_empty() {
        out.push_str("-- hardware counters --\n");
        let _ = writeln!(
            out,
            "{:<name_w$} {:>7} {:>12} {:>12} {:>6} {:>10} {:>12}",
            "stage", "spans", "cycles", "instructions", "ipc", "llc-miss%", "branch-miss"
        );
        for (name, pmu) in pmu_stages {
            let ipc = pmu.ipc().map_or("-".to_string(), |v| format!("{v:.2}"));
            let miss =
                pmu.llc_miss_rate().map_or("-".to_string(), |v| format!("{:.1}%", v * 100.0));
            let _ = writeln!(
                out,
                "{:<name_w$} {:>7} {:>12} {:>12} {:>6} {:>10} {:>12}",
                name, pmu.samples, pmu.cycles, pmu.instructions, ipc, miss, pmu.branch_misses
            );
        }
    }
    if !summary.pmu_status.is_empty() {
        let _ = writeln!(out, "pmu: {}", summary.pmu_status);
    }
    // Live telemetry gauges, when the run exercised them: the drift
    // monitor's verdict and the flight recorder's aggregates.
    let drift = crate::telemetry::drift_gauge();
    if drift.observed > 0 {
        let _ = writeln!(
            out,
            "drift: {} (regret {:.2}x, fallthrough {:.1}%, {} observed)",
            drift.level.label(),
            drift.regret_permille as f64 / 1000.0,
            drift.fallthrough_permille as f64 / 10.0,
            drift.observed
        );
    }
    let flight = crate::telemetry::flight_stats();
    if flight.requests > 0 {
        let _ = writeln!(
            out,
            "flight: {} request(s), {} anomaly(ies), threshold {}",
            flight.requests,
            flight.anomalies,
            flight.threshold_ns.map_or("unarmed".to_string(), fmt_ns)
        );
    }
    if !summary.counters.is_empty() {
        out.push_str("-- counters --\n");
        for (name, value) in &summary.counters {
            let _ = writeln!(out, "{name:<name_w$} {value}");
        }
    }
    out
}

/// Closes any span left open in a flushed event stream by appending
/// synthetic `End` events, returning a balanced copy.
///
/// A panic (or an early `process::exit`) unwinding through open spans
/// leaves their `Begin` events in the buffers with no matching `End`;
/// the raw stream would then fail [`validate_chrome_trace`] and panic
/// [`crate::build_forest`]. Unmatched begins are closed per thread in
/// LIFO order (preserving nesting) at the stream's final timestamp, so
/// the trace shows the open spans running until the crash — exactly
/// what a flame view of a panicking run should look like.
pub fn balanced_events(events: &[Event]) -> Vec<Event> {
    let mut out = events.to_vec();
    let mut stacks: std::collections::HashMap<u64, Vec<&Event>> = std::collections::HashMap::new();
    for e in events {
        match e.phase {
            Phase::Begin => stacks.entry(e.tid).or_default().push(e),
            Phase::End => {
                // Streams from take_events() are properly nested per
                // tid; ignore a stray End so this helper never panics.
                let _ = stacks.entry(e.tid).or_default().pop();
            }
            Phase::Counter | Phase::Sample | Phase::Pmu(_) => {}
        }
    }
    let end_ts = events.iter().map(|e| e.ts_ns).max().unwrap_or(0);
    let mut tids: Vec<u64> = stacks.keys().copied().collect();
    tids.sort_unstable();
    for tid in tids {
        while let Some(open) = stacks.get_mut(&tid).and_then(Vec::pop) {
            out.push(Event {
                name: open.name,
                phase: Phase::End,
                ts_ns: end_ts,
                tid,
                value: end_ts.saturating_sub(open.ts_ns),
            });
        }
    }
    out
}

pub mod folded {
    //! Folded-stack export: one line per distinct span stack,
    //! `root;child;grandchild <self_ns>`, aggregated — the input format
    //! of `flamegraph.pl` / `inferno-flamegraph`, so any span stream
    //! turns into a flame graph with stock tools.
    //!
    //! The invariant that makes flame graphs truthful (and that the
    //! proptest in `tests/folded_prop.rs` pins down): every line's
    //! value is *self* time, so the values sum to exactly the total
    //! root-span time — no double counting of nested spans.

    use crate::span::{Event, Phase};
    use std::collections::{BTreeMap, HashMap};

    /// Aggregates a flushed event stream into folded-stack lines,
    /// name-sorted. Uses the same positional nesting and unbalanced-
    /// stream tolerance as `Summary::from_events`: an `End` without a
    /// matching open span becomes a single-frame root line (balance
    /// panic-truncated streams with [`super::balanced_events`] first
    /// for open spans to be counted at all).
    pub fn folded_stacks(events: &[Event]) -> String {
        let mut lines: BTreeMap<String, u64> = BTreeMap::new();
        // Per-thread stack of (name, ns consumed by closed children).
        let mut stacks: HashMap<u64, Vec<(&str, u64)>> = HashMap::new();
        for e in events {
            match e.phase {
                Phase::Begin => stacks.entry(e.tid).or_default().push((e.name, 0)),
                Phase::End => {
                    let stack = stacks.entry(e.tid).or_default();
                    let matched = stack.last().map(|t| t.0) == Some(e.name);
                    let self_ns = if matched {
                        let (_, child_ns) = stack.pop().unwrap();
                        if let Some(top) = stack.last_mut() {
                            top.1 += e.value;
                        }
                        e.value.saturating_sub(child_ns)
                    } else {
                        e.value
                    };
                    let mut path = String::new();
                    if matched {
                        for (frame, _) in stack.iter() {
                            path.push_str(frame);
                            path.push(';');
                        }
                    }
                    path.push_str(e.name);
                    *lines.entry(path).or_insert(0) += self_ns;
                }
                Phase::Counter | Phase::Sample | Phase::Pmu(_) => {}
            }
        }
        let mut out = String::new();
        for (path, self_ns) in lines {
            out.push_str(&path);
            out.push(' ');
            out.push_str(&self_ns.to_string());
            out.push('\n');
        }
        out
    }

    /// Parses folded-stack text back into `(stack frames, self_ns)`
    /// rows — the round-trip half of the export invariant, also handy
    /// for asserting on specific stacks in tests.
    pub fn parse_folded(text: &str) -> Result<Vec<(Vec<String>, u64)>, String> {
        let mut rows = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if line.is_empty() {
                continue;
            }
            let (path, value) = line
                .rsplit_once(' ')
                .ok_or_else(|| format!("line {}: no value separator", i + 1))?;
            let value: u64 =
                value.parse().map_err(|e| format!("line {}: bad value: {e}", i + 1))?;
            if path.is_empty() || path.split(';').any(str::is_empty) {
                return Err(format!("line {}: empty frame", i + 1));
            }
            rows.push((path.split(';').map(str::to_string).collect(), value));
        }
        Ok(rows)
    }
}

/// Writes the Chrome trace to `trace_path`, plus `perf_summary.json`
/// next to it (same directory) and the folded-stack flame-graph feed at
/// `trace_path` with a `.folded` extension, returning the summary path.
/// The conventional call is at the end of a run, after the traced work
/// has completed; spans still open in the stream (a panic mid-span) are
/// closed via [`balanced_events`] so the emitted artifacts always load.
pub fn write_trace_files(
    events: &[Event],
    trace_path: &Path,
) -> std::io::Result<std::path::PathBuf> {
    let events = balanced_events(events);
    std::fs::write(trace_path, chrome_trace_json(&events))?;
    std::fs::write(trace_path.with_extension("folded"), folded::folded_stacks(&events))?;
    let summary = Summary::from_events(&events);
    let summary_path = trace_path.parent().unwrap_or(Path::new(".")).join("perf_summary.json");
    std::fs::write(&summary_path, perf_summary_json(&summary))?;
    Ok(summary_path)
}

pub mod json {
    //! A minimal JSON parser — just enough to validate this crate's own
    //! exports (and any well-formed JSON) without external
    //! dependencies. Numbers are parsed as `f64`.

    use std::collections::BTreeMap;

    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        Number(f64),
        String(String),
        Array(Vec<Value>),
        Object(BTreeMap<String, Value>),
    }

    impl Value {
        pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
            match self {
                Value::Object(m) => Some(m),
                _ => None,
            }
        }

        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Array(v) => Some(v),
                _ => None,
            }
        }

        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::String(s) => Some(s),
                _ => None,
            }
        }

        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Number(n) => Some(*n),
                _ => None,
            }
        }

        /// Member of an object, if this is an object that has it.
        pub fn get(&self, key: &str) -> Option<&Value> {
            self.as_object()?.get(key)
        }
    }

    /// Parses a complete JSON document (rejects trailing garbage).
    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(v)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }

        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn expect(&mut self, b: u8) -> Result<(), String> {
            if self.peek() == Some(b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(format!("expected '{}' at byte {}", b as char, self.pos))
            }
        }

        fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
            if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
                self.pos += lit.len();
                Ok(v)
            } else {
                Err(format!("invalid literal at byte {}", self.pos))
            }
        }

        fn value(&mut self) -> Result<Value, String> {
            self.skip_ws();
            match self.peek() {
                Some(b'{') => self.object(),
                Some(b'[') => self.array(),
                Some(b'"') => Ok(Value::String(self.string()?)),
                Some(b't') => self.literal("true", Value::Bool(true)),
                Some(b'f') => self.literal("false", Value::Bool(false)),
                Some(b'n') => self.literal("null", Value::Null),
                Some(b'-' | b'0'..=b'9') => self.number(),
                _ => Err(format!("unexpected byte at {}", self.pos)),
            }
        }

        fn object(&mut self) -> Result<Value, String> {
            self.expect(b'{')?;
            let mut map = std::collections::BTreeMap::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Value::Object(map));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(b':')?;
                map.insert(key, self.value()?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Value::Object(map));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
                }
            }
        }

        fn array(&mut self) -> Result<Value, String> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(self.value()?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
                }
            }
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                match self.peek() {
                    None => return Err("unterminated string".into()),
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        match self.peek() {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'n') => out.push('\n'),
                            Some(b'r') => out.push('\r'),
                            Some(b't') => out.push('\t'),
                            Some(b'b') => out.push('\u{8}'),
                            Some(b'f') => out.push('\u{c}'),
                            Some(b'u') => {
                                let hex = self
                                    .bytes
                                    .get(self.pos + 1..self.pos + 5)
                                    .ok_or("truncated \\u escape")?;
                                let code = u32::from_str_radix(
                                    std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                    16,
                                )
                                .map_err(|e| e.to_string())?;
                                // Surrogate pairs are not emitted by our
                                // exporters; map lone surrogates to the
                                // replacement character.
                                out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                                self.pos += 4;
                            }
                            _ => return Err(format!("bad escape at byte {}", self.pos)),
                        }
                        self.pos += 1;
                    }
                    Some(_) => {
                        // Consume one UTF-8 scalar (input is &str, so
                        // boundaries are valid).
                        let rest = &self.bytes[self.pos..];
                        let s = unsafe { std::str::from_utf8_unchecked(rest) };
                        let ch = s.chars().next().unwrap();
                        out.push(ch);
                        self.pos += ch.len_utf8();
                    }
                }
            }
        }

        fn number(&mut self) -> Result<Value, String> {
            let start = self.pos;
            if self.peek() == Some(b'-') {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
                self.pos += 1;
            }
            let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
            text.parse::<f64>().map(Value::Number).map_err(|e| format!("bad number: {e}"))
        }
    }
}

/// Validates a Chrome trace document: parses it, checks `traceEvents`
/// exists, and checks every `B` has a matching same-name `E` per tid
/// (properly nested). Returns the number of complete spans.
pub fn validate_chrome_trace(text: &str) -> Result<usize, String> {
    let doc = json::parse(text)?;
    let events =
        doc.get("traceEvents").and_then(|v| v.as_array()).ok_or("missing traceEvents array")?;
    let mut stacks: std::collections::HashMap<i64, Vec<String>> = std::collections::HashMap::new();
    let mut spans = 0usize;
    for (i, e) in events.iter().enumerate() {
        let ph = e.get("ph").and_then(|v| v.as_str()).ok_or(format!("event {i}: no ph"))?;
        let name = e.get("name").and_then(|v| v.as_str()).ok_or(format!("event {i}: no name"))?;
        let tid = e.get("tid").and_then(|v| v.as_f64()).ok_or(format!("event {i}: no tid"))? as i64;
        match ph {
            "B" => stacks.entry(tid).or_default().push(name.to_string()),
            "E" => {
                let top = stacks.entry(tid).or_default().pop();
                match top {
                    Some(open) if open == name => spans += 1,
                    Some(open) => {
                        return Err(format!("event {i}: E '{name}' closes '{open}' on tid {tid}"))
                    }
                    None => return Err(format!("event {i}: E '{name}' with empty stack")),
                }
            }
            "C" | "i" | "M" | "X" => {}
            other => return Err(format!("event {i}: unknown phase '{other}'")),
        }
    }
    for (tid, stack) in &stacks {
        if !stack.is_empty() {
            return Err(format!("tid {tid}: {} unclosed span(s): {:?}", stack.len(), stack));
        }
    }
    Ok(spans)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &'static str, phase: Phase, ts_ns: u64, tid: u64, value: u64) -> Event {
        Event { name, phase, ts_ns, tid, value }
    }

    fn sample_events() -> Vec<Event> {
        vec![
            ev("pipeline.select", Phase::Begin, 1_000, 1, 0),
            ev("features.extract", Phase::Begin, 2_000, 1, 0),
            ev("features.nnz", Phase::Counter, 2_500, 1, 4096),
            ev("features.extract", Phase::End, 9_000, 1, 7_000),
            ev("timing.measure_median", Phase::Sample, 9_500, 2, 1_234),
            ev("pipeline.select", Phase::End, 10_000, 1, 9_000),
        ]
    }

    #[test]
    fn chrome_json_parses_and_balances() {
        let text = chrome_trace_json(&sample_events());
        let spans = validate_chrome_trace(&text).expect("valid trace");
        assert_eq!(spans, 2);
        // Microsecond timestamps with ns decimals survive.
        assert!(text.contains("\"ts\":2.500"), "{text}");
    }

    #[test]
    fn empty_trace_is_valid() {
        let text = chrome_trace_json(&[]);
        assert_eq!(validate_chrome_trace(&text), Ok(0));
    }

    #[test]
    fn validator_catches_unbalanced() {
        let events = vec![ev("a", Phase::Begin, 0, 1, 0)];
        let text = chrome_trace_json(&events);
        assert!(validate_chrome_trace(&text).is_err());
        let crossed = vec![
            ev("a", Phase::Begin, 0, 1, 0),
            ev("b", Phase::Begin, 1, 1, 0),
            ev("a", Phase::End, 2, 1, 2),
        ];
        assert!(validate_chrome_trace(&chrome_trace_json(&crossed)).is_err());
    }

    #[test]
    fn perf_summary_shape() {
        let summary = Summary::from_events(&sample_events());
        let text = perf_summary_json(&summary);
        let doc = json::parse(&text).expect("parses");
        let stages = doc.get("stages").unwrap().as_object().unwrap();
        assert!(stages.contains_key("features.extract"));
        assert!(stages.contains_key("pipeline.select"));
        assert!(stages.contains_key("timing.measure_median"));
        let fe = stages["features.extract"].as_object().unwrap();
        assert_eq!(fe["count"].as_f64(), Some(1.0));
        assert_eq!(fe["p50_ns"].as_f64(), Some(7_000.0));
        assert_eq!(fe["p99_ns"].as_f64(), Some(7_000.0));
        assert_eq!(fe["self_total_ns"].as_f64(), Some(7_000.0));
        // pipeline.select's self-time excludes the nested extract.
        let ps = stages["pipeline.select"].as_object().unwrap();
        assert_eq!(ps["total_ns"].as_f64(), Some(9_000.0));
        assert_eq!(ps["self_total_ns"].as_f64(), Some(2_000.0));
        assert!(doc.get("pmu_status").unwrap().as_str().is_some());
        let counters = doc.get("counters").unwrap().as_object().unwrap();
        assert_eq!(counters["features.nnz"].as_f64(), Some(4096.0));
    }

    #[test]
    fn perf_summary_emits_pmu_block_when_present() {
        let events = [
            ev("k", Phase::Begin, 0, 1, 0),
            ev("k", Phase::Pmu(crate::PmuKind::Cycles), 9, 1, 500),
            ev("k", Phase::Pmu(crate::PmuKind::Instructions), 9, 1, 1500),
            ev("k", Phase::End, 10, 1, 10),
        ];
        let summary = Summary::from_events(&events);
        let doc = json::parse(&perf_summary_json(&summary)).expect("parses");
        let k = doc.get("stages").unwrap().get("k").unwrap();
        let pmu = k.get("pmu").expect("pmu block").as_object().unwrap();
        assert_eq!(pmu["samples"].as_f64(), Some(1.0));
        assert_eq!(pmu["cycles"].as_f64(), Some(500.0));
        assert_eq!(pmu["instructions"].as_f64(), Some(1500.0));
        // And the Pmu events render as valid Chrome counter events.
        let trace = chrome_trace_json(&events);
        assert!(validate_chrome_trace(&trace).is_ok());
        assert!(trace.contains("\"pmu.cycles\":500"), "{trace}");
    }

    #[test]
    fn run_report_lists_stages_and_counters() {
        let summary = Summary::from_events(&sample_events());
        let report = run_report(&summary);
        assert!(report.contains("features.extract"));
        assert!(report.contains("-- counters --"));
        assert!(report.contains("features.nnz"));
        assert!(report.contains("self"));
        assert!(report.contains("p99"));
        // The explicit status marker is always present.
        assert!(report.lines().any(|l| l.starts_with("pmu: ")), "{report}");
        assert!(run_report(&Summary::default()).contains("no events"));
    }

    #[test]
    fn run_report_nests_children_under_parents() {
        let summary = Summary::from_events(&sample_events());
        let report = run_report(&summary);
        // features.extract nested under pipeline.select: indented, and
        // rendered after its parent despite sorting before it.
        let lines: Vec<&str> = report.lines().collect();
        let parent = lines.iter().position(|l| l.starts_with("pipeline.select")).unwrap();
        let child = lines.iter().position(|l| l.starts_with("  features.extract")).unwrap();
        assert_eq!(child, parent + 1, "{report}");
    }

    #[test]
    fn json_parser_handles_escapes_and_nesting() {
        let v = json::parse(r#"{"a\n\"b":[1,-2.5e2,true,null,{"x":"A"}]}"#).unwrap();
        let arr = v.get("a\n\"b").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_f64(), Some(-250.0));
        assert_eq!(arr[4].get("x").unwrap().as_str(), Some("A"));
        assert!(json::parse("{},").is_err());
        assert!(json::parse(r#"{"unterminated"#).is_err());
    }

    #[test]
    fn perf_summary_carries_host_fingerprint() {
        let summary = Summary::from_events(&sample_events());
        let host = HostFingerprint {
            cpu_cores: 4,
            threads_env: Some("2".into()),
            pool_env: None,
            rustc: Some("rustc 1.95.0".into()),
            simd: Some("avx2:4".into()),
            simd_env: Some("0".into()),
            mlp: Some("pf8:il2".into()),
            prefetch_env: None,
        };
        let doc = json::parse(&perf_summary_json_with(&summary, &host)).expect("parses");
        let h = doc.get("host").expect("host object");
        assert_eq!(h.get("cpu_cores").unwrap().as_f64(), Some(4.0));
        assert_eq!(h.get("threads_env").unwrap().as_str(), Some("2"));
        assert_eq!(h.get("pool_env"), Some(&json::Value::Null));
        assert_eq!(h.get("rustc").unwrap().as_str(), Some("rustc 1.95.0"));
        assert_eq!(h.get("simd").unwrap().as_str(), Some("avx2:4"));
        assert_eq!(h.get("simd_env").unwrap().as_str(), Some("0"));
        assert_eq!(h.get("mlp").unwrap().as_str(), Some("pf8:il2"));
        // The detect()-based default emits a host object too.
        assert!(json::parse(&perf_summary_json(&summary)).unwrap().get("host").is_some());
    }

    #[test]
    fn balanced_events_closes_open_spans_lifo() {
        let open = vec![
            ev("outer", Phase::Begin, 1_000, 1, 0),
            ev("inner", Phase::Begin, 2_000, 1, 0),
            ev("done", Phase::Begin, 2_500, 2, 0),
            ev("done", Phase::End, 3_000, 2, 500),
            ev("other_thread", Phase::Begin, 4_000, 2, 0),
        ];
        let balanced = balanced_events(&open);
        assert_eq!(balanced.len(), open.len() + 3);
        let text = chrome_trace_json(&balanced);
        assert_eq!(validate_chrome_trace(&text), Ok(4));
        // Synthetic ends land at the stream max with derived durations.
        let inner_end = balanced
            .iter()
            .find(|e| e.name == "inner" && e.phase == Phase::End)
            .expect("inner closed");
        assert_eq!(inner_end.ts_ns, 4_000);
        assert_eq!(inner_end.value, 2_000);
        // build_forest accepts the balanced stream and nests correctly.
        let forest = crate::build_forest(&balanced);
        assert!(forest.iter().any(|n| n.name == "outer" && n.children[0].name == "inner"));
        // Already-balanced streams come back unchanged.
        assert_eq!(balanced_events(&sample_events()), sample_events());
    }

    #[test]
    fn write_trace_files_emits_all_artifacts() {
        let dir = std::env::temp_dir().join("wise_trace_export_test");
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("trace.json");
        let summary_path = write_trace_files(&sample_events(), &trace_path).unwrap();
        assert_eq!(summary_path, dir.join("perf_summary.json"));
        let trace_text = std::fs::read_to_string(&trace_path).unwrap();
        assert!(validate_chrome_trace(&trace_text).is_ok());
        let summary_text = std::fs::read_to_string(&summary_path).unwrap();
        assert!(json::parse(&summary_text).is_ok());
        let folded_text = std::fs::read_to_string(dir.join("trace.folded")).unwrap();
        assert!(folded::parse_folded(&folded_text).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn folded_stacks_are_self_time_and_round_trip() {
        let text = folded::folded_stacks(&sample_events());
        let rows = folded::parse_folded(&text).expect("parses");
        let get = |path: &[&str]| rows.iter().find(|(p, _)| p == path).map(|(_, v)| *v);
        assert_eq!(get(&["pipeline.select"]), Some(2_000)); // 9000 - 7000 child
        assert_eq!(get(&["pipeline.select", "features.extract"]), Some(7_000));
        // Self-times sum to the total root duration.
        let sum: u64 = rows.iter().map(|(_, v)| v).sum();
        assert_eq!(sum, 9_000);
    }

    #[test]
    fn parse_folded_rejects_malformed_lines() {
        assert!(folded::parse_folded("no_value\n").is_err());
        assert!(folded::parse_folded("a;b not_a_number\n").is_err());
        assert!(folded::parse_folded("a;;b 10\n").is_err());
        assert_eq!(folded::parse_folded("").unwrap().len(), 0);
    }
}
