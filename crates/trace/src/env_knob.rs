//! One shared grammar for every `WISE_*` environment knob.
//!
//! Six knobs across three crates (`WISE_SIMD`, `WISE_PREFETCH`,
//! `WISE_PMU`, `WISE_CASCADE`, `WISE_THREADS`, `WISE_POOL_SPIN`) grew
//! the same parse-and-warn contract independently; this module is now
//! the single implementation they all call through:
//!
//! * unset → `Ok(None)` (the caller applies its default);
//! * the value is trimmed; empty (or whitespace-only) after the trim is
//!   an explicit error, never a silent default;
//! * word alternatives are matched case-insensitively (the knob's
//!   interpreter sees the lowercased form, the error message carries
//!   the original spelling);
//! * a malformed value falls back to the default *loudly*: one
//!   once-per-process stderr warning per knob plus a named trace
//!   counter — a typo in a benchmark script must never silently change
//!   what was measured.
//!
//! Domain modules keep their typed `parse_wise_*` entry points (and
//! their own value enums); only the grammar and the warn-once plumbing
//! live here.

use std::collections::BTreeSet;
use std::sync::{Mutex, OnceLock};

/// Why a knob value was rejected by [`Knob::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KnobError {
    /// Set but empty (or only whitespace).
    Empty {
        /// The environment variable's name.
        knob: &'static str,
    },
    /// Set to something the knob's interpreter does not recognize.
    Invalid {
        /// The environment variable's name.
        knob: &'static str,
        /// The rejected value (trimmed, original case).
        value: String,
        /// Human-readable description of the accepted grammar.
        expected: &'static str,
    },
}

impl std::fmt::Display for KnobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KnobError::Empty { knob } => write!(f, "{knob} is set but empty"),
            KnobError::Invalid { knob, value, expected } => {
                write!(f, "{knob}={value:?} is not {expected}")
            }
        }
    }
}

/// One environment knob: its variable name plus the grammar description
/// used in error messages. Construct as a `const` next to the domain
/// parse function.
pub struct Knob {
    pub name: &'static str,
    /// Completes the sentence `WISE_X="v" is not <expected>`.
    pub expected: &'static str,
}

impl Knob {
    pub const fn new(name: &'static str, expected: &'static str) -> Knob {
        Knob { name, expected }
    }

    /// Applies the shared grammar to a raw value: unset → `Ok(None)`,
    /// trim, empty → [`KnobError::Empty`], otherwise the lowercased
    /// form goes to `interp`, whose `None` becomes
    /// [`KnobError::Invalid`].
    pub fn parse<T>(
        &self,
        raw: Option<&str>,
        interp: impl FnOnce(&str) -> Option<T>,
    ) -> Result<Option<T>, KnobError> {
        let Some(raw) = raw else { return Ok(None) };
        let trimmed = raw.trim();
        if trimmed.is_empty() {
            return Err(KnobError::Empty { knob: self.name });
        }
        match interp(&trimmed.to_ascii_lowercase()) {
            Some(v) => Ok(Some(v)),
            None => Err(KnobError::Invalid {
                knob: self.name,
                value: trimmed.to_string(),
                expected: self.expected,
            }),
        }
    }

    /// Reads the knob from the process environment. A malformed value
    /// returns `None` (the caller's default applies) after reporting
    /// once per process per knob: a stderr warning naming the fallback
    /// plus one bump of `invalid_counter`.
    pub fn read<T>(
        &self,
        invalid_counter: &'static str,
        fallback_note: &str,
        interp: impl FnOnce(&str) -> Option<T>,
    ) -> Option<T> {
        match self.parse(std::env::var(self.name).ok().as_deref(), interp) {
            Ok(v) => v,
            Err(err) => {
                self.warn_once(&err, invalid_counter, fallback_note);
                None
            }
        }
    }

    /// The warn-once half of the contract, callable directly by sites
    /// that parse eagerly themselves.
    pub fn warn_once(&self, err: &KnobError, invalid_counter: &'static str, fallback_note: &str) {
        static WARNED: OnceLock<Mutex<BTreeSet<&'static str>>> = OnceLock::new();
        let warned = WARNED.get_or_init(|| Mutex::new(BTreeSet::new()));
        let first = warned.lock().map(|mut set| set.insert(self.name)).unwrap_or(false);
        if first {
            eprintln!("[wise] ignoring {err}; {fallback_note}");
            crate::counter(invalid_counter, 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const WORD: Knob = Knob::new("WISE_UNIT_WORD", "a unit mode (expected a or b)");
    const INT: Knob = Knob::new("WISE_UNIT_INT", "a non-negative integer");

    fn word(norm: &str) -> Option<u8> {
        match norm {
            "a" => Some(0),
            "b" => Some(1),
            _ => None,
        }
    }

    #[test]
    fn unset_is_none() {
        assert_eq!(WORD.parse(None, word), Ok(None));
    }

    #[test]
    fn empty_and_whitespace_are_explicit_errors() {
        for raw in ["", "   ", "\t"] {
            assert_eq!(
                WORD.parse(Some(raw), word),
                Err(KnobError::Empty { knob: "WISE_UNIT_WORD" }),
                "{raw:?}"
            );
        }
        assert!(WORD.parse(Some(""), word).unwrap_err().to_string().contains("empty"));
    }

    #[test]
    fn words_match_case_insensitively_after_trim() {
        for raw in ["a", "A", " a ", "\tA\n"] {
            assert_eq!(WORD.parse(Some(raw), word), Ok(Some(0)), "{raw:?}");
        }
        assert_eq!(WORD.parse(Some("B"), word), Ok(Some(1)));
    }

    #[test]
    fn invalid_keeps_original_spelling_and_names_the_grammar() {
        let err = WORD.parse(Some(" Bogus "), word).unwrap_err();
        assert_eq!(
            err,
            KnobError::Invalid {
                knob: "WISE_UNIT_WORD",
                value: "Bogus".to_string(),
                expected: "a unit mode (expected a or b)",
            }
        );
        let msg = err.to_string();
        assert!(msg.contains("WISE_UNIT_WORD"), "{msg}");
        assert!(msg.contains("Bogus"), "{msg}");
        assert!(msg.contains("expected a or b"), "{msg}");
    }

    #[test]
    fn integer_interpreters_compose_with_the_grammar() {
        let int = |norm: &str| norm.parse::<u32>().ok();
        assert_eq!(INT.parse(Some(" 42 "), int), Ok(Some(42)));
        assert_eq!(INT.parse(Some("0"), int), Ok(Some(0)));
        let err = INT.parse(Some("-3"), int).unwrap_err();
        assert!(err.to_string().contains("non-negative integer"), "{err}");
    }
}
