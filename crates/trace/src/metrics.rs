//! Log2-bucketed histograms for duration/size distributions.
//!
//! A [`Hist`] trades exactness for a fixed 64-slot footprint: a value
//! `v` lands in bucket `⌊log2 v⌋ + 1` (bucket 0 holds zeros), so the
//! whole `u64` range is covered and quantiles are accurate to within a
//! factor of two — plenty for the run report's at-a-glance spread,
//! while exact percentiles in [`crate::Summary`] come from the retained
//! samples.

/// A fixed-size log2-bucketed histogram over `u64` values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hist {
    /// `buckets[0]` counts zeros; `buckets[b]` counts values with
    /// `⌊log2 v⌋ = b - 1`, i.e. `v ∈ [2^(b-1), 2^b)`.
    buckets: [u64; 65],
    count: u64,
}

impl Default for Hist {
    fn default() -> Self {
        Hist { buckets: [0; 65], count: 0 }
    }
}

impl Hist {
    fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// Adds one observation.
    pub fn observe(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Lower bound of the bucket holding the `q`-quantile observation
    /// (`q` in `[0, 1]`), or 0 for an empty histogram. Accurate to a
    /// factor of two by construction.
    pub fn quantile_lower_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count - 1) as f64 * q.clamp(0.0, 1.0)).round() as u64;
        let mut seen = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen > rank {
                return if b == 0 { 0 } else { 1u64 << (b - 1) };
            }
        }
        unreachable!("rank < count")
    }

    /// Non-empty buckets as `(lower_bound, count)` pairs, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(b, &c)| (if b == 0 { 0 } else { 1u64 << (b - 1) }, c))
            .collect()
    }

    /// A compact spark-line over the occupied bucket range ("▁▃▇" per
    /// bucket), for the run report.
    pub fn sparkline(&self) -> String {
        const GLYPHS: [char; 5] = ['_', '.', ':', '|', '#'];
        let occupied: Vec<usize> =
            (0..self.buckets.len()).filter(|&b| self.buckets[b] > 0).collect();
        let (Some(&lo), Some(&hi)) = (occupied.first(), occupied.last()) else {
            return String::new();
        };
        let max = self.buckets[lo..=hi].iter().copied().max().unwrap_or(1).max(1);
        (lo..=hi)
            .map(|b| {
                let c = self.buckets[b];
                if c == 0 {
                    GLYPHS[0]
                } else {
                    GLYPHS[1 + (c * (GLYPHS.len() as u64 - 2) / max) as usize]
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        let mut h = Hist::default();
        for v in [0, 1, 2, 3, 4, 7, 8, u64::MAX] {
            h.observe(v);
        }
        assert_eq!(h.count(), 8);
        let buckets = h.nonzero_buckets();
        // 0 -> bucket 0; 1 -> [1,2); 2,3 -> [2,4); 4,7 -> [4,8);
        // 8 -> [8,16); MAX -> [2^63, ..).
        assert_eq!(buckets, vec![(0, 1), (1, 1), (2, 2), (4, 2), (8, 1), (1u64 << 63, 1)]);
    }

    #[test]
    fn quantiles_are_factor_of_two_bounds() {
        let mut h = Hist::default();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        let p50 = h.quantile_lower_bound(0.5);
        assert!(p50 <= 500 && 500 < p50 * 2, "p50 bound {p50}");
        let p95 = h.quantile_lower_bound(0.95);
        assert!(p95 <= 950 && 950 < p95 * 2, "p95 bound {p95}");
        assert_eq!(h.quantile_lower_bound(0.0), 1);
        assert_eq!(h.quantile_lower_bound(1.0), 512);
    }

    #[test]
    fn empty_hist_is_quiet() {
        let h = Hist::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_lower_bound(0.5), 0);
        assert_eq!(h.sparkline(), "");
    }

    #[test]
    fn sparkline_spans_occupied_range() {
        let mut h = Hist::default();
        h.observe(1);
        h.observe(1);
        h.observe(8);
        // Buckets 1..=4 -> four glyphs, gaps rendered as '_'.
        assert_eq!(h.sparkline().chars().count(), 4);
        assert!(h.sparkline().contains('_'));
    }
}
