//! `wise-trace` — zero-dependency observability for the WISE pipeline.
//!
//! Every performance claim WISE makes is an *end-to-end* claim: feature
//! extraction, format conversion and the SpMV win must be accounted for
//! together (paper §4.4, Figs. 10–13). This crate gives the whole
//! workspace one shared way to do that accounting:
//!
//! * [`span`] — hierarchical RAII spans recorded into per-thread
//!   buffers (no shared lock on the hot path; buffers merge at flush);
//! * [`span_pmu`] / [`pmu`] — spans that additionally carry hardware
//!   counter deltas (cycles, instructions, LLC loads/misses, branch
//!   misses) read from a raw-syscall `perf_event_open` group, degrading
//!   to plain timestamps with an explicit status marker when the
//!   kernel denies the PMU (`WISE_PMU` knob: `0|off|1|on|auto`);
//! * [`counter`] / [`observe_ns`] — monotonic counters and duration
//!   samples, aggregated into log2-bucketed histograms
//!   ([`metrics::Hist`]);
//! * [`export`] — a human-readable run report, Chrome trace-event JSON
//!   (loadable in Perfetto / `chrome://tracing`), and a machine-
//!   readable `perf_summary.json` (stage → `{p50, p95, count}`) so
//!   benchmark trajectories can be diffed across PRs;
//! * [`ledger`] — the versioned `BENCH_<seq>.json` benchmark ledger
//!   (host fingerprint, per-stage wall times, throughput, model
//!   quality) and the noise-aware regression gate that compares runs
//!   (driven by the `bench_regress` bin in `wise-bench`).
//!
//! # Cost when disabled
//!
//! Tracing is off unless `WISE_TRACE` is set (to anything but `0` or
//! the empty string) or the process calls [`set_enabled`]`(true)`. When
//! off, [`span`], [`counter`] and [`observe_ns`] each cost exactly one
//! relaxed atomic load and perform **no allocation** — cheap enough to
//! leave in SpMV inner loops and the fused feature-extraction sweep.
//!
//! # Quick use
//!
//! ```
//! wise_trace::set_enabled(true);
//! {
//!     let _outer = wise_trace::span("demo.outer");
//!     let _inner = wise_trace::span("demo.inner");
//!     wise_trace::counter("demo.nnz", 1234);
//! }
//! let events = wise_trace::take_events();
//! assert!(events.len() >= 5); // 2 begins + 2 ends + 1 counter
//! let summary = wise_trace::Summary::from_events(&events);
//! assert_eq!(summary.counters["demo.nnz"], 1234);
//! wise_trace::set_enabled(false);
//! ```
//!
//! # Span taxonomy
//!
//! Names are dotted `area.step` strings; the conventional areas used
//! across the workspace are `matrix.*`, `gen.*`, `features.*`,
//! `kernel.*`, `estimate.*`, `label.*`, `train.*`, `select.*` and
//! `pipeline.*` (see DESIGN.md §10 for the full table).

pub mod env_knob;
pub mod export;
pub mod ledger;
pub mod metrics;
pub mod pmu;
pub mod span;
pub mod telemetry;

pub use export::{
    balanced_events, chrome_trace_json, perf_summary_json, perf_summary_json_with, run_report,
    write_trace_files,
};
pub use ledger::{BenchRecord, GatePolicy, GateReport, HostFingerprint, ModelMetrics};
pub use metrics::Hist;
pub use pmu::{PmuCounts, PmuKind, PmuStatus};
pub use span::{
    build_forest, counter, dropped_events, observe, observe_ns, span, span_pmu, take_events, Event,
    Phase, Span, SpanNode,
};
pub use summary::{PmuStats, StageStats, Summary};
pub use telemetry::{DriftLevel, QuantileSketch, RequestRecord};

use std::sync::atomic::{AtomicU8, Ordering};

const UNINIT: u8 = 0;
const OFF: u8 = 1;
const ON: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(UNINIT);

/// Whether tracing is currently on. One relaxed atomic load on every
/// call after the first (the first call reads `WISE_TRACE` from the
/// environment).
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        ON => true,
        OFF => false,
        _ => init_from_env(),
    }
}

#[cold]
fn init_from_env() -> bool {
    let on = std::env::var("WISE_TRACE").map(|v| !v.is_empty() && v != "0").unwrap_or(false);
    STATE.store(if on { ON } else { OFF }, Ordering::Relaxed);
    on
}

/// Overrides the `WISE_TRACE` environment gate (used by `--trace-out`
/// flags and tests).
pub fn set_enabled(on: bool) {
    STATE.store(if on { ON } else { OFF }, Ordering::Relaxed);
}

mod summary {
    use crate::metrics::Hist;
    use crate::pmu::PmuKind;
    use crate::span::{Event, Phase};
    use crate::telemetry::QuantileSketch;
    use std::collections::{BTreeMap, HashMap};

    /// Aggregated hardware-counter deltas of one stage (summed over its
    /// [`Phase::Pmu`]-carrying spans).
    #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
    pub struct PmuStats {
        /// Spans that contributed counter deltas.
        pub samples: u64,
        pub cycles: u64,
        pub instructions: u64,
        pub llc_loads: u64,
        pub llc_misses: u64,
        pub branch_misses: u64,
    }

    impl PmuStats {
        /// Instructions per cycle over the stage's aggregate.
        pub fn ipc(&self) -> Option<f64> {
            if self.cycles > 0 && self.instructions > 0 {
                Some(self.instructions as f64 / self.cycles as f64)
            } else {
                None
            }
        }

        /// Aggregate LLC load miss rate in `[0, 1]`.
        pub fn llc_miss_rate(&self) -> Option<f64> {
            if self.llc_loads > 0 {
                Some((self.llc_misses as f64 / self.llc_loads as f64).min(1.0))
            } else {
                None
            }
        }
    }

    /// Aggregated statistics of one span/sample stage.
    #[derive(Debug, Clone, PartialEq)]
    pub struct StageStats {
        /// Completed spans / recorded samples.
        pub count: u64,
        /// Sum of all durations, nanoseconds.
        pub total_ns: u64,
        /// Sum of durations *minus* time spent in child spans on the
        /// same thread — the stage's own work, so nested stages (e.g.
        /// `kernel.spmv.simd` inside `kernel.spmv`) are not
        /// double-counted. Samples contribute their full value.
        pub self_total_ns: u64,
        pub min_ns: u64,
        pub p50_ns: u64,
        pub p95_ns: u64,
        pub p99_ns: u64,
        pub max_ns: u64,
        /// Log2-bucketed duration histogram (for the run report).
        pub hist: Hist,
        /// Most frequent enclosing span, if this stage ever nested
        /// (drives the indented run-report tree).
        pub parent: Option<String>,
        /// Hardware-counter aggregate when any of this stage's spans
        /// carried PMU deltas.
        pub pmu: Option<PmuStats>,
        /// Mergeable quantile sketch over the same durations
        /// (α = [`crate::telemetry::DEFAULT_ALPHA`]): lets runs be
        /// combined after the fact with bounded error, unlike the exact
        /// percentiles above which only describe this stream.
        pub sketch: QuantileSketch,
    }

    /// Everything the exporters need, aggregated from a flushed event
    /// stream: per-stage duration statistics (from span ends and
    /// duration samples), summed counters, and the PMU status marker.
    #[derive(Debug, Clone, Default)]
    pub struct Summary {
        /// Stage name → duration statistics, name-sorted.
        pub stages: BTreeMap<String, StageStats>,
        /// Counter name → summed value, name-sorted.
        pub counters: BTreeMap<String, u64>,
        /// [`crate::pmu::status_label`] at aggregation time (`off`,
        /// `available`, or `unavailable (<reason>)`; empty only on
        /// `Summary::default()`).
        pub pmu_status: String,
    }

    #[derive(Default)]
    struct Acc {
        ds: Vec<u64>,
        self_ns: u64,
        /// Enclosing-span name ("" = root) → occurrences.
        parents: BTreeMap<&'static str, u64>,
        pmu: [u64; 5],
        pmu_samples: u64,
    }

    impl Summary {
        /// Aggregates a flushed event stream ([`crate::take_events`]).
        ///
        /// Self-time uses the same positional nesting rule as
        /// [`crate::build_forest`], but tolerates unbalanced streams
        /// (dropped or truncated events): an `End` that does not match
        /// the top of its thread's stack is attributed as a root span
        /// with full self-time, never a panic.
        pub fn from_events(events: &[Event]) -> Summary {
            let mut accs: BTreeMap<&'static str, Acc> = BTreeMap::new();
            let mut counters: BTreeMap<String, u64> = BTreeMap::new();
            // Per-thread stack of (open span, ns consumed by its
            // already-closed children).
            let mut stacks: HashMap<u64, Vec<(&'static str, u64)>> = HashMap::new();
            for e in events {
                match e.phase {
                    Phase::Begin => stacks.entry(e.tid).or_default().push((e.name, 0)),
                    Phase::End => {
                        let stack = stacks.entry(e.tid).or_default();
                        let matched = stack.last().map(|t| t.0) == Some(e.name);
                        let (self_ns, parent) = if matched {
                            let (_, child_ns) = stack.pop().unwrap();
                            if let Some(top) = stack.last_mut() {
                                top.1 += e.value;
                            }
                            (e.value.saturating_sub(child_ns), stack.last().map(|t| t.0))
                        } else {
                            (e.value, None)
                        };
                        let acc = accs.entry(e.name).or_default();
                        acc.ds.push(e.value);
                        acc.self_ns += self_ns;
                        *acc.parents.entry(parent.unwrap_or("")).or_insert(0) += 1;
                    }
                    Phase::Sample => {
                        let acc = accs.entry(e.name).or_default();
                        acc.ds.push(e.value);
                        acc.self_ns += e.value;
                        *acc.parents.entry("").or_insert(0) += 1;
                    }
                    Phase::Counter => *counters.entry(e.name.to_string()).or_insert(0) += e.value,
                    Phase::Pmu(kind) => {
                        let acc = accs.entry(e.name).or_default();
                        acc.pmu[kind as usize] += e.value;
                        if kind == PmuKind::Cycles {
                            acc.pmu_samples += 1;
                        }
                    }
                }
            }
            let stages = accs
                .into_iter()
                .filter(|(_, acc)| !acc.ds.is_empty())
                .map(|(name, acc)| {
                    let mut ds = acc.ds;
                    ds.sort_unstable();
                    let pct = |p: f64| ds[((ds.len() - 1) as f64 * p).round() as usize];
                    let mut hist = Hist::default();
                    let mut sketch = crate::telemetry::QuantileSketch::default();
                    for &d in &ds {
                        hist.observe(d);
                        sketch.observe(d);
                    }
                    // Dominant parent; ties break toward "" (root,
                    // which sorts first) then lexicographically.
                    let parent = acc
                        .parents
                        .iter()
                        .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
                        .map(|(&p, _)| p)
                        .filter(|p| !p.is_empty())
                        .map(str::to_string);
                    let pmu = (acc.pmu_samples > 0).then(|| PmuStats {
                        samples: acc.pmu_samples,
                        cycles: acc.pmu[PmuKind::Cycles as usize],
                        instructions: acc.pmu[PmuKind::Instructions as usize],
                        llc_loads: acc.pmu[PmuKind::LlcLoads as usize],
                        llc_misses: acc.pmu[PmuKind::LlcMisses as usize],
                        branch_misses: acc.pmu[PmuKind::BranchMisses as usize],
                    });
                    let stats = StageStats {
                        count: ds.len() as u64,
                        total_ns: ds.iter().sum(),
                        self_total_ns: acc.self_ns,
                        min_ns: ds[0],
                        p50_ns: pct(0.50),
                        p95_ns: pct(0.95),
                        p99_ns: pct(0.99),
                        max_ns: ds[ds.len() - 1],
                        hist,
                        parent,
                        pmu,
                        sketch,
                    };
                    (name.to_string(), stats)
                })
                .collect();
            Summary { stages, counters, pmu_status: crate::pmu::status_label() }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_percentiles_are_exact() {
        let mk = |value| Event { name: "s", phase: Phase::Sample, ts_ns: 0, tid: 0, value };
        let events: Vec<Event> = (1..=100).map(mk).collect();
        let s = Summary::from_events(&events);
        let st = &s.stages["s"];
        assert_eq!(st.count, 100);
        assert_eq!(st.min_ns, 1);
        assert_eq!(st.max_ns, 100);
        assert_eq!(st.p50_ns, 51); // index round(99 * 0.5) = 50 -> value 51
        assert_eq!(st.p95_ns, 95); // index round(99 * 0.95) = 94 -> value 95
        assert_eq!(st.p99_ns, 99); // index round(99 * 0.99) = 98 -> value 99
        assert_eq!(st.total_ns, 5050);
        assert_eq!(st.self_total_ns, 5050); // samples are all self-time
        assert_eq!(st.parent, None);
        assert_eq!(st.pmu, None);
        assert!(!s.pmu_status.is_empty());
    }

    #[test]
    fn summary_sketch_agrees_with_exact_percentiles() {
        // Acceptance bound: the streaming sketch must land within its
        // documented α of the retained-sample exact percentiles.
        let mk = |value| Event { name: "s", phase: Phase::Sample, ts_ns: 0, tid: 0, value };
        let events: Vec<Event> = (1..=5000u64).map(|i| mk(i * 37 % 100_000 + 1)).collect();
        let s = Summary::from_events(&events);
        let st = &s.stages["s"];
        assert_eq!(st.sketch.count(), st.count);
        for (exact, q) in [(st.p50_ns, 0.50), (st.p95_ns, 0.95), (st.p99_ns, 0.99)] {
            let est = st.sketch.quantile(q).unwrap();
            let bound = st.sketch.alpha() * exact as f64 + 1.0;
            assert!(
                (est as f64 - exact as f64).abs() <= bound,
                "sketch q{q}: {est} vs exact {exact} (bound {bound})"
            );
        }
    }

    #[test]
    fn summary_sums_counters() {
        let mk = |value| Event { name: "c", phase: Phase::Counter, ts_ns: 0, tid: 0, value };
        let s = Summary::from_events(&[mk(3), mk(4)]);
        assert_eq!(s.counters["c"], 7);
        assert!(s.stages.is_empty());
    }

    #[test]
    fn summary_subtracts_child_time_and_tracks_parents() {
        let ev = |name, phase, ts_ns, value| Event { name, phase, ts_ns, tid: 1, value };
        let events = [
            ev("outer", Phase::Begin, 0, 0),
            ev("inner", Phase::Begin, 10, 0),
            ev("inner", Phase::End, 40, 30),
            ev("inner", Phase::Begin, 50, 0),
            ev("inner", Phase::End, 70, 20),
            ev("outer", Phase::End, 100, 100),
        ];
        let s = Summary::from_events(&events);
        assert_eq!(s.stages["outer"].total_ns, 100);
        assert_eq!(s.stages["outer"].self_total_ns, 50); // 100 - (30 + 20)
        assert_eq!(s.stages["outer"].parent, None);
        assert_eq!(s.stages["inner"].self_total_ns, 50);
        assert_eq!(s.stages["inner"].parent.as_deref(), Some("outer"));
    }

    #[test]
    fn summary_aggregates_pmu_deltas() {
        let ev = |phase, value| Event { name: "k", phase, ts_ns: 0, tid: 1, value };
        let events = [
            ev(Phase::Begin, 0),
            ev(Phase::Pmu(PmuKind::Cycles), 1000),
            ev(Phase::Pmu(PmuKind::Instructions), 2000),
            ev(Phase::Pmu(PmuKind::LlcLoads), 100),
            ev(Phase::Pmu(PmuKind::LlcMisses), 25),
            ev(Phase::End, 10),
            ev(Phase::Begin, 0),
            ev(Phase::Pmu(PmuKind::Cycles), 1000),
            ev(Phase::Pmu(PmuKind::Instructions), 2000),
            ev(Phase::End, 10),
        ];
        let s = Summary::from_events(&events);
        let pmu = s.stages["k"].pmu.expect("pmu stats");
        assert_eq!(pmu.samples, 2);
        assert_eq!(pmu.cycles, 2000);
        assert_eq!(pmu.instructions, 4000);
        assert_eq!(pmu.ipc(), Some(2.0));
        assert_eq!(pmu.llc_miss_rate(), Some(0.25));
        assert_eq!(pmu.branch_misses, 0);
    }

    #[test]
    fn summary_tolerates_unbalanced_streams() {
        let ev = |name, phase, ts_ns, value| Event { name, phase, ts_ns, tid: 1, value };
        // End without Begin, then a Begin never closed: no panic, and
        // the orphan End is attributed as a root with full self-time.
        let events = [ev("orphan", Phase::End, 10, 10), ev("open", Phase::Begin, 20, 0)];
        let s = Summary::from_events(&events);
        assert_eq!(s.stages["orphan"].self_total_ns, 10);
        assert_eq!(s.stages["orphan"].parent, None);
        assert!(!s.stages.contains_key("open"));
    }
}
