//! `wise-trace` — zero-dependency observability for the WISE pipeline.
//!
//! Every performance claim WISE makes is an *end-to-end* claim: feature
//! extraction, format conversion and the SpMV win must be accounted for
//! together (paper §4.4, Figs. 10–13). This crate gives the whole
//! workspace one shared way to do that accounting:
//!
//! * [`span`] — hierarchical RAII spans recorded into per-thread
//!   buffers (no shared lock on the hot path; buffers merge at flush);
//! * [`counter`] / [`observe_ns`] — monotonic counters and duration
//!   samples, aggregated into log2-bucketed histograms
//!   ([`metrics::Hist`]);
//! * [`export`] — a human-readable run report, Chrome trace-event JSON
//!   (loadable in Perfetto / `chrome://tracing`), and a machine-
//!   readable `perf_summary.json` (stage → `{p50, p95, count}`) so
//!   benchmark trajectories can be diffed across PRs;
//! * [`ledger`] — the versioned `BENCH_<seq>.json` benchmark ledger
//!   (host fingerprint, per-stage wall times, throughput, model
//!   quality) and the noise-aware regression gate that compares runs
//!   (driven by the `bench_regress` bin in `wise-bench`).
//!
//! # Cost when disabled
//!
//! Tracing is off unless `WISE_TRACE` is set (to anything but `0` or
//! the empty string) or the process calls [`set_enabled`]`(true)`. When
//! off, [`span`], [`counter`] and [`observe_ns`] each cost exactly one
//! relaxed atomic load and perform **no allocation** — cheap enough to
//! leave in SpMV inner loops and the fused feature-extraction sweep.
//!
//! # Quick use
//!
//! ```
//! wise_trace::set_enabled(true);
//! {
//!     let _outer = wise_trace::span("demo.outer");
//!     let _inner = wise_trace::span("demo.inner");
//!     wise_trace::counter("demo.nnz", 1234);
//! }
//! let events = wise_trace::take_events();
//! assert!(events.len() >= 5); // 2 begins + 2 ends + 1 counter
//! let summary = wise_trace::Summary::from_events(&events);
//! assert_eq!(summary.counters["demo.nnz"], 1234);
//! wise_trace::set_enabled(false);
//! ```
//!
//! # Span taxonomy
//!
//! Names are dotted `area.step` strings; the conventional areas used
//! across the workspace are `matrix.*`, `gen.*`, `features.*`,
//! `kernel.*`, `estimate.*`, `label.*`, `train.*`, `select.*` and
//! `pipeline.*` (see DESIGN.md §10 for the full table).

pub mod export;
pub mod ledger;
pub mod metrics;
pub mod span;

pub use export::{
    balanced_events, chrome_trace_json, perf_summary_json, perf_summary_json_with, run_report,
    write_trace_files,
};
pub use ledger::{BenchRecord, GatePolicy, GateReport, HostFingerprint, ModelMetrics};
pub use metrics::Hist;
pub use span::{
    build_forest, counter, dropped_events, observe_ns, span, take_events, Event, Phase, Span,
    SpanNode,
};
pub use summary::{StageStats, Summary};

use std::sync::atomic::{AtomicU8, Ordering};

const UNINIT: u8 = 0;
const OFF: u8 = 1;
const ON: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(UNINIT);

/// Whether tracing is currently on. One relaxed atomic load on every
/// call after the first (the first call reads `WISE_TRACE` from the
/// environment).
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        ON => true,
        OFF => false,
        _ => init_from_env(),
    }
}

#[cold]
fn init_from_env() -> bool {
    let on = std::env::var("WISE_TRACE").map(|v| !v.is_empty() && v != "0").unwrap_or(false);
    STATE.store(if on { ON } else { OFF }, Ordering::Relaxed);
    on
}

/// Overrides the `WISE_TRACE` environment gate (used by `--trace-out`
/// flags and tests).
pub fn set_enabled(on: bool) {
    STATE.store(if on { ON } else { OFF }, Ordering::Relaxed);
}

mod summary {
    use crate::metrics::Hist;
    use crate::span::{Event, Phase};
    use std::collections::BTreeMap;

    /// Aggregated statistics of one span/sample stage.
    #[derive(Debug, Clone, PartialEq)]
    pub struct StageStats {
        /// Completed spans / recorded samples.
        pub count: u64,
        /// Sum of all durations, nanoseconds.
        pub total_ns: u64,
        pub min_ns: u64,
        pub p50_ns: u64,
        pub p95_ns: u64,
        pub max_ns: u64,
        /// Log2-bucketed duration histogram (for the run report).
        pub hist: Hist,
    }

    /// Everything the exporters need, aggregated from a flushed event
    /// stream: per-stage duration statistics (from span ends and
    /// duration samples) and summed counters.
    #[derive(Debug, Clone, Default)]
    pub struct Summary {
        /// Stage name → duration statistics, name-sorted.
        pub stages: BTreeMap<String, StageStats>,
        /// Counter name → summed value, name-sorted.
        pub counters: BTreeMap<String, u64>,
    }

    impl Summary {
        /// Aggregates a flushed event stream ([`crate::take_events`]).
        pub fn from_events(events: &[Event]) -> Summary {
            let mut durations: BTreeMap<&str, Vec<u64>> = BTreeMap::new();
            let mut counters: BTreeMap<String, u64> = BTreeMap::new();
            for e in events {
                match e.phase {
                    Phase::End | Phase::Sample => {
                        durations.entry(e.name).or_default().push(e.value)
                    }
                    Phase::Counter => *counters.entry(e.name.to_string()).or_insert(0) += e.value,
                    Phase::Begin => {}
                }
            }
            let stages = durations
                .into_iter()
                .map(|(name, mut ds)| {
                    ds.sort_unstable();
                    let pct = |p: f64| ds[((ds.len() - 1) as f64 * p).round() as usize];
                    let mut hist = Hist::default();
                    for &d in &ds {
                        hist.observe(d);
                    }
                    let stats = StageStats {
                        count: ds.len() as u64,
                        total_ns: ds.iter().sum(),
                        min_ns: ds[0],
                        p50_ns: pct(0.50),
                        p95_ns: pct(0.95),
                        max_ns: ds[ds.len() - 1],
                        hist,
                    };
                    (name.to_string(), stats)
                })
                .collect();
            Summary { stages, counters }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_percentiles_are_exact() {
        let mk = |value| Event { name: "s", phase: Phase::Sample, ts_ns: 0, tid: 0, value };
        let events: Vec<Event> = (1..=100).map(mk).collect();
        let s = Summary::from_events(&events);
        let st = &s.stages["s"];
        assert_eq!(st.count, 100);
        assert_eq!(st.min_ns, 1);
        assert_eq!(st.max_ns, 100);
        assert_eq!(st.p50_ns, 51); // index round(99 * 0.5) = 50 -> value 51
        assert_eq!(st.p95_ns, 95); // index round(99 * 0.95) = 94 -> value 95
        assert_eq!(st.total_ns, 5050);
    }

    #[test]
    fn summary_sums_counters() {
        let mk = |value| Event { name: "c", phase: Phase::Counter, ts_ns: 0, tid: 0, value };
        let s = Summary::from_events(&[mk(3), mk(4)]);
        assert_eq!(s.counters["c"], 7);
        assert!(s.stages.is_empty());
    }
}
