//! RAII spans, per-thread event buffers, and the global flush path.
//!
//! Each thread that records events owns one ring buffer, registered in
//! a global list on the thread's first event. The hot path locks only
//! the thread's *own* buffer — uncontended except during a concurrent
//! [`take_events`] flush — so threads never serialize against each
//! other while tracing. Buffers are rings: when a thread outruns
//! [`RING_CAPACITY`] the oldest events are dropped (and counted), so
//! tracing can stay on across arbitrarily long runs with bounded
//! memory.

use crate::pmu::{PmuCounts, PmuKind};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Per-thread ring capacity, in events. Large enough that flush-bounded
/// workloads (a pipeline run, one figure harness) never wrap.
pub const RING_CAPACITY: usize = 1 << 16;

/// What an [`Event`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// A span opened (`value` is 0).
    Begin,
    /// A span closed (`value` is its duration in ns).
    End,
    /// A monotonic counter increment (`value` is the increment).
    Counter,
    /// A standalone duration sample (`value` in ns), e.g. one
    /// `measure_median` iteration.
    Sample,
    /// A hardware-counter delta attributed to the [`span_pmu`] span
    /// closing at this timestamp (`value` is the counter delta over the
    /// span, on the recording thread).
    Pmu(PmuKind),
}

/// One trace record. `name` is `'static` so the hot path never copies
/// or hashes strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    pub name: &'static str,
    pub phase: Phase,
    /// Nanoseconds since the process-wide trace epoch.
    pub ts_ns: u64,
    /// Stable id of the recording thread.
    pub tid: u64,
    /// Phase-dependent payload (see [`Phase`]).
    pub value: u64,
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the trace epoch (first use wins).
pub(crate) fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

struct Ring {
    events: VecDeque<Event>,
    /// Events discarded because the ring was full.
    dropped: u64,
}

struct ThreadBuf {
    tid: u64,
    ring: Mutex<Ring>,
}

impl ThreadBuf {
    fn push(&self, e: Event) {
        let mut ring = self.ring.lock().unwrap();
        if ring.events.len() == RING_CAPACITY {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(e);
    }
}

fn registry() -> &'static Mutex<Vec<Arc<ThreadBuf>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<ThreadBuf>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static LOCAL: RefCell<Option<Arc<ThreadBuf>>> = const { RefCell::new(None) };
}

pub(crate) fn record(name: &'static str, phase: Phase, ts_ns: u64, value: u64) {
    LOCAL.with(|local| {
        let mut local = local.borrow_mut();
        let buf = local.get_or_insert_with(|| {
            let buf = Arc::new(ThreadBuf {
                tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
                ring: Mutex::new(Ring { events: VecDeque::new(), dropped: 0 }),
            });
            registry().lock().unwrap().push(Arc::clone(&buf));
            buf
        });
        buf.push(Event { name, phase, ts_ns, tid: buf.tid, value });
    });
}

/// An open span; records its `End` event (with duration) on drop.
/// Obtained from [`span`]; inert when tracing is disabled.
#[must_use = "a span measures the scope it is bound to; bind it to a `_guard` variable"]
pub struct Span {
    name: &'static str,
    start_ns: u64,
    active: bool,
    pmu_base: Option<PmuCounts>,
}

/// Opens a hierarchical span. Nesting is positional: spans opened while
/// this one is live (on the same thread) are its children. When tracing
/// is disabled this is one relaxed atomic load and returns an inert
/// guard (no allocation, nothing recorded on drop).
#[inline]
pub fn span(name: &'static str) -> Span {
    if !crate::enabled() {
        return Span { name, start_ns: 0, active: false, pmu_base: None };
    }
    let start_ns = now_ns();
    record(name, Phase::Begin, start_ns, 0);
    Span { name, start_ns, active: true, pmu_base: None }
}

/// Like [`span`], but additionally snapshots the calling thread's
/// hardware-counter group and records per-counter [`Phase::Pmu`] deltas
/// when the span closes. Degrades to exactly [`span`] — a bit-identical
/// event stream — when the PMU is off or unavailable (see
/// [`crate::pmu`]); still a single relaxed load and no allocation when
/// tracing is disabled.
#[inline]
pub fn span_pmu(name: &'static str) -> Span {
    if !crate::enabled() {
        return Span { name, start_ns: 0, active: false, pmu_base: None };
    }
    // Baseline read happens before the start timestamp so the read cost
    // lands in the parent, not in this span's duration.
    let pmu_base = crate::pmu::span_baseline();
    let start_ns = now_ns();
    record(name, Phase::Begin, start_ns, 0);
    Span { name, start_ns, active: true, pmu_base }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.active {
            let end = now_ns();
            if let Some(base) = self.pmu_base {
                // Stamped at `end` and recorded before the End event:
                // the stable timestamp sort keeps the deltas just
                // inside the closing span, and the counter read cost
                // stays out of the measured duration.
                crate::pmu::emit_span_delta(self.name, &base, end);
            }
            let dur = end - self.start_ns;
            record(self.name, Phase::End, end, dur);
            crate::telemetry::stream_observe(self.name, dur);
        }
    }
}

/// Adds `value` to the named monotonic counter. One relaxed load when
/// tracing is disabled.
#[inline]
pub fn counter(name: &'static str, value: u64) {
    if crate::enabled() {
        record(name, Phase::Counter, now_ns(), value);
    }
}

/// Records one standalone duration sample (nanoseconds) under `name` —
/// the histogram feed for repeated measurements like `measure_median`
/// iterations. One relaxed load when tracing is disabled.
#[inline]
pub fn observe_ns(name: &'static str, ns: u64) {
    if crate::enabled() {
        record(name, Phase::Sample, now_ns(), ns);
        crate::telemetry::stream_observe(name, ns);
    }
}

/// Records one standalone histogram sample under `name` for
/// dimensionless values (ratios, sizes) — identical recording path to
/// [`observe_ns`]; the unit is the caller's convention (e.g. the
/// `model.residual.*` stages record predicted/measured permille). One
/// relaxed load when tracing is disabled.
#[inline]
pub fn observe(name: &'static str, value: u64) {
    if crate::enabled() {
        record(name, Phase::Sample, now_ns(), value);
        crate::telemetry::stream_observe(name, value);
    }
}

/// Drains every thread's buffer and returns the merged event stream,
/// sorted by timestamp (ties keep per-thread recording order). Spans
/// still open when this is called are *not* included — flush after the
/// work being traced has completed.
pub fn take_events() -> Vec<Event> {
    let bufs: Vec<Arc<ThreadBuf>> = registry().lock().unwrap().clone();
    let mut all = Vec::new();
    for buf in bufs {
        let mut ring = buf.ring.lock().unwrap();
        all.extend(ring.events.drain(..));
    }
    // Stable: per-thread order (begin-before-end for zero-length spans)
    // survives the merge.
    all.sort_by_key(|e| e.ts_ns);
    all
}

/// Total events dropped to ring overflow since the last drain, across
/// all threads.
pub fn dropped_events() -> u64 {
    let bufs: Vec<Arc<ThreadBuf>> = registry().lock().unwrap().clone();
    let mut total = 0;
    for buf in bufs {
        let mut ring = buf.ring.lock().unwrap();
        total += ring.dropped;
        ring.dropped = 0;
    }
    total
}

/// One node of the reconstructed span tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    pub name: &'static str,
    pub tid: u64,
    pub start_ns: u64,
    pub duration_ns: u64,
    pub children: Vec<SpanNode>,
}

/// Rebuilds the parent/child span forest from a flushed event stream.
/// Parentage is per-thread and positional: a span's parent is the span
/// that was open on the same thread when it began. Returns the roots
/// (cross-thread, start-time order).
///
/// # Panics
///
/// Panics if the stream's Begin/End events are not properly nested per
/// thread (which [`take_events`] guarantees for streams with no dropped
/// events and no still-open spans).
pub fn build_forest(events: &[Event]) -> Vec<SpanNode> {
    let mut roots: Vec<SpanNode> = Vec::new();
    let mut stacks: std::collections::HashMap<u64, Vec<SpanNode>> =
        std::collections::HashMap::new();
    for e in events {
        match e.phase {
            Phase::Begin => stacks.entry(e.tid).or_default().push(SpanNode {
                name: e.name,
                tid: e.tid,
                start_ns: e.ts_ns,
                duration_ns: 0,
                children: Vec::new(),
            }),
            Phase::End => {
                let stack = stacks.entry(e.tid).or_default();
                let mut node = stack.pop().unwrap_or_else(|| {
                    panic!("End without Begin for span '{}' on tid {}", e.name, e.tid)
                });
                assert_eq!(node.name, e.name, "interleaved spans on tid {}", e.tid);
                node.duration_ns = e.value;
                match stack.last_mut() {
                    Some(parent) => parent.children.push(node),
                    None => roots.push(node),
                }
            }
            Phase::Counter | Phase::Sample | Phase::Pmu(_) => {}
        }
    }
    for (tid, stack) in &stacks {
        assert!(stack.is_empty(), "{} unclosed span(s) on tid {}", stack.len(), tid);
    }
    roots.sort_by_key(|n| n.start_ns);
    roots
}

#[cfg(test)]
mod tests {
    use super::*;

    // The span tests that flip the global enable flag live in the
    // `tests/` integration binaries (one process each) so they cannot
    // race the rest of the unit-test suite over shared trace state.

    #[test]
    fn disabled_span_is_inert() {
        crate::set_enabled(false);
        let _ = take_events(); // drain anything earlier tests left behind
        {
            let _s = span("unit.disabled");
            counter("unit.disabled.count", 5);
            observe_ns("unit.disabled.sample", 10);
        }
        assert!(take_events().iter().all(|e| !e.name.starts_with("unit.disabled")));
    }

    #[test]
    fn forest_rejects_unbalanced_streams() {
        let begin = Event { name: "a", phase: Phase::Begin, ts_ns: 0, tid: 1, value: 0 };
        let result = std::panic::catch_unwind(|| build_forest(&[begin]));
        assert!(result.is_err(), "open span must panic");
    }

    #[test]
    fn forest_nests_by_position() {
        let ev = |name, phase, ts_ns, value| Event { name, phase, ts_ns, tid: 7, value };
        let events = [
            ev("outer", Phase::Begin, 0, 0),
            ev("inner", Phase::Begin, 10, 0),
            ev("inner", Phase::End, 20, 10),
            ev("outer", Phase::End, 30, 30),
            ev("second", Phase::Begin, 40, 0),
            ev("second", Phase::End, 50, 10),
        ];
        let forest = build_forest(&events);
        assert_eq!(forest.len(), 2);
        assert_eq!(forest[0].name, "outer");
        assert_eq!(forest[0].children.len(), 1);
        assert_eq!(forest[0].children[0].name, "inner");
        assert_eq!(forest[1].name, "second");
        assert!(forest[1].children.is_empty());
    }
}
