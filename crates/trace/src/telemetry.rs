//! Streaming telemetry for infinite-lifetime processes.
//!
//! The exporters in [`crate::export`] assume a *bounded* run: raw
//! samples are retained per stage and everything flushes at process
//! exit. A long-lived selection daemon breaks both assumptions, so this
//! module keeps a second, always-on aggregation path whose memory is
//! constant after warm-up:
//!
//! * [`QuantileSketch`] — a DDSketch-style mergeable quantile sketch
//!   with log-γ buckets: relative error is bounded by a fixed α, two
//!   sketches over disjoint streams merge *exactly* (the merged sketch
//!   is bit-identical to one built from the concatenated stream), and
//!   the footprint is hard-capped by the bucket range of `u64`.
//! * A **streaming stage registry**: every closing span and duration
//!   sample also lands in a per-stage sketch (one global map keyed by
//!   the `'static` stage name), so quantiles stay queryable while the
//!   process runs — no flush, no retained samples.
//! * A **per-request flight recorder**: selection requests record a
//!   bounded ring of [`RequestRecord`]s (method, cascade stage, margin,
//!   predicted vs measured seconds, PMU deltas). A request whose
//!   latency exceeds a configurable quantile of recent history dumps
//!   the surrounding window as a loadable Chrome-trace JSON — the
//!   "black box" for post-hoc analysis of one slow request.
//! * A **drift gauge**: `wise-core`'s prediction-drift monitor mirrors
//!   its windowed EWMAs here so exports and snapshots can carry them
//!   without a dependency cycle.
//! * A **periodic snapshot exporter**: a background thread renders the
//!   above to `metrics_snapshot.json` every N seconds (atomic
//!   tmp+rename), the feed for the `wise-top` live view.
//!
//! # Knobs
//!
//! All on the [`crate::env_knob`] grammar: `WISE_TELEMETRY=0|off`
//! disables the streaming registry and the flight recorder (spans then
//! cost exactly what they did before this module existed);
//! `WISE_FLIGHT_QUANTILE` moves the anomaly threshold (default 0.99);
//! `WISE_FLIGHT_DIR` makes anomaly dumps land as files;
//! `WISE_SNAPSHOT` / `WISE_SNAPSHOT_SECS` drive the snapshot thread.

use crate::env_knob::Knob;
use crate::pmu::PmuCounts;
use std::collections::{BTreeMap, VecDeque};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

// ---------------------------------------------------------------------
// Mergeable relative-error quantile sketch
// ---------------------------------------------------------------------

/// Default relative-error bound α for every sketch the workspace
/// creates (stage registry, flight recorder, [`crate::Summary`]).
pub const DEFAULT_ALPHA: f64 = 0.01;

/// A DDSketch-style quantile sketch over `u64` values (nanoseconds by
/// convention) with relative-error guarantee α: for any quantile the
/// estimate `e` of true value `v` satisfies `|e - v| <= α·v` (plus
/// integer rounding). Buckets are logarithmic: bucket `i` covers
/// `(γ^(i-1), γ^i]` with `γ = (1+α)/(1-α)`, zero values get a dedicated
/// exact bucket. The bucket index range for `u64` is finite (~2.2k at
/// α = 0.01), so the footprint is hard-capped no matter how many values
/// stream in — and two sketches with the same α merge exactly by
/// bucket-wise addition.
#[derive(Debug, Clone)]
pub struct QuantileSketch {
    alpha: f64,
    gamma: f64,
    ln_gamma: f64,
    /// Count of exact zeros.
    zero: u64,
    count: u64,
    sum: f64,
    min: u64,
    max: u64,
    /// Bucket counts for indices `bucket_lo ..`, grown lazily toward
    /// both ends but bounded by the index range of `u64`.
    buckets: Vec<u64>,
    bucket_lo: i32,
}

impl QuantileSketch {
    /// A sketch with relative-error bound `alpha` (clamped to a sane
    /// `(0.0001, 0.5)` range).
    pub fn new(alpha: f64) -> QuantileSketch {
        let alpha = alpha.clamp(1e-4, 0.5);
        let gamma = (1.0 + alpha) / (1.0 - alpha);
        QuantileSketch {
            alpha,
            gamma,
            ln_gamma: gamma.ln(),
            zero: 0,
            count: 0,
            sum: 0.0,
            min: u64::MAX,
            max: 0,
            buckets: Vec::new(),
            bucket_lo: 0,
        }
    }

    /// The documented relative-error bound.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> f64 {
        self.sum
    }

    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(if self.zero > 0 { 0 } else { self.min })
    }

    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Current heap footprint in bytes — constant once the observed
    /// value range stops widening (the soak test pins this).
    pub fn footprint_bytes(&self) -> usize {
        self.buckets.capacity() * std::mem::size_of::<u64>()
    }

    /// `γ^i` through the same expression the index adjustment uses, so
    /// bucket boundaries and midpoints stay mutually consistent.
    fn power(&self, i: i32) -> f64 {
        (i as f64 * self.ln_gamma).exp()
    }

    /// Bucket index for `v >= 1`: the unique `i` with
    /// `γ^(i-1) < v <= γ^i` (float error at the boundaries is repaired
    /// by the adjustment loops, keeping the α bound exact).
    fn bucket_index(&self, v: u64) -> i32 {
        let x = (v as f64).ln() / self.ln_gamma;
        let mut i = x.ceil() as i32;
        while i > i32::MIN && self.power(i - 1) >= v as f64 {
            i -= 1;
        }
        while self.power(i) < v as f64 {
            i += 1;
        }
        i
    }

    /// Midpoint estimate for bucket `i`, minimizing worst-case relative
    /// error: `2·γ^i / (γ + 1)`.
    fn bucket_value(&self, i: i32) -> u64 {
        (2.0 * self.power(i) / (self.gamma + 1.0)).round() as u64
    }

    /// Ensures `buckets` covers index `i`, growing toward the needed
    /// end. Growth is bounded: indices live in the fixed range the
    /// `u64` domain maps to, so repeated observes converge to a
    /// constant footprint.
    fn slot(&mut self, i: i32) -> &mut u64 {
        if self.buckets.is_empty() {
            self.bucket_lo = i;
            self.buckets.push(0);
        } else if i < self.bucket_lo {
            let grow = (self.bucket_lo - i) as usize;
            self.buckets.splice(0..0, std::iter::repeat(0).take(grow));
            self.bucket_lo = i;
        } else if (i - self.bucket_lo) as usize >= self.buckets.len() {
            self.buckets.resize((i - self.bucket_lo) as usize + 1, 0);
        }
        &mut self.buckets[(i - self.bucket_lo) as usize]
    }

    /// Records one value.
    pub fn observe(&mut self, v: u64) {
        self.count += 1;
        self.sum += v as f64;
        self.max = self.max.max(v);
        if v == 0 {
            self.zero += 1;
            return;
        }
        self.min = self.min.min(v);
        let i = self.bucket_index(v);
        *self.slot(i) += 1;
    }

    /// Merges `other` into `self`. Exact: the result is identical to a
    /// sketch that observed both streams. Both sketches must share α
    /// (same-γ bucket grids; enforced).
    pub fn merge(&mut self, other: &QuantileSketch) {
        assert!(
            (self.alpha - other.alpha).abs() < 1e-12,
            "cannot merge sketches with different alpha ({} vs {})",
            self.alpha,
            other.alpha
        );
        self.zero += other.zero;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (idx, &c) in other.buckets.iter().enumerate() {
            if c > 0 {
                *self.slot(other.bucket_lo + idx as i32) += c;
            }
        }
    }

    /// The quantile estimate at `q ∈ [0, 1]`, within α relative error
    /// of the exact order statistic (rank convention matches
    /// [`crate::Summary`]: `round(q·(count-1))`). `None` on an empty
    /// sketch.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * (self.count - 1) as f64).round() as u64;
        if rank < self.zero {
            return Some(0);
        }
        let mut seen = self.zero;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen > rank {
                return Some(self.bucket_value(self.bucket_lo + idx as i32));
            }
        }
        Some(self.max)
    }

    /// Serializes to a canonical JSON object: only non-empty buckets,
    /// index-sorted, so equal sketch contents produce identical bytes
    /// (and [`QuantileSketch::from_json`] round-trips byte-stably).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(128);
        s.push_str(&format!(
            "{{\"alpha\":{},\"count\":{},\"zero\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
            self.alpha,
            self.count,
            self.zero,
            self.sum,
            if self.count > 0 && self.zero == 0 { self.min } else { 0 },
            self.max
        ));
        let mut first = true;
        for (idx, &c) in self.buckets.iter().enumerate() {
            if c > 0 {
                if !first {
                    s.push(',');
                }
                first = false;
                s.push_str(&format!("[{},{}]", self.bucket_lo + idx as i32, c));
            }
        }
        s.push_str("]}");
        s
    }

    /// Parses [`QuantileSketch::to_json`] output. `None` on malformed
    /// or schema-mismatched input.
    pub fn from_json(v: &crate::export::json::Value) -> Option<QuantileSketch> {
        let obj = v.as_object()?;
        let num = |k: &str| obj.get(k).and_then(|v| v.as_f64());
        let mut sk = QuantileSketch::new(num("alpha")?);
        sk.count = num("count")? as u64;
        sk.zero = num("zero")? as u64;
        sk.sum = num("sum")?;
        sk.max = num("max")? as u64;
        let min = num("min")? as u64;
        sk.min = if sk.count > 0 && sk.zero == 0 { min } else { u64::MAX };
        for pair in obj.get("buckets")?.as_array()? {
            let pair = pair.as_array()?;
            if pair.len() != 2 {
                return None;
            }
            let idx = pair[0].as_f64()? as i32;
            let c = pair[1].as_f64()? as u64;
            *sk.slot(idx) += c;
        }
        Some(sk)
    }
}

impl Default for QuantileSketch {
    fn default() -> QuantileSketch {
        QuantileSketch::new(DEFAULT_ALPHA)
    }
}

impl PartialEq for QuantileSketch {
    /// Content equality (bucket grids compared sparsely, so differently
    /// grown-but-equal sketches compare equal).
    fn eq(&self, other: &QuantileSketch) -> bool {
        self.to_json() == other.to_json()
    }
}

// ---------------------------------------------------------------------
// WISE_TELEMETRY gate
// ---------------------------------------------------------------------

const TELEMETRY_KNOB: Knob =
    Knob::new("WISE_TELEMETRY", "a telemetry mode (expected 0/off, 1/on, or auto)");

const T_UNINIT: u8 = 0;
const T_OFF: u8 = 1;
const T_ON: u8 = 2;

static TELEMETRY: AtomicU8 = AtomicU8::new(T_UNINIT);

/// Whether the streaming registry and the flight recorder are live.
/// Defaults to on (`WISE_TELEMETRY=0|off` disables); one relaxed atomic
/// load after the first call.
#[inline]
pub fn telemetry_enabled() -> bool {
    match TELEMETRY.load(Ordering::Relaxed) {
        T_ON => true,
        T_OFF => false,
        _ => telemetry_from_env(),
    }
}

#[cold]
fn telemetry_from_env() -> bool {
    let on = TELEMETRY_KNOB
        .read("trace.telemetry_env_invalid", "telemetry stays on", |norm| match norm {
            "0" | "off" => Some(false),
            "1" | "on" | "auto" => Some(true),
            _ => None,
        })
        .unwrap_or(true);
    TELEMETRY.store(if on { T_ON } else { T_OFF }, Ordering::Relaxed);
    on
}

/// Overrides the `WISE_TELEMETRY` gate (tests, the overhead benchmark).
pub fn set_telemetry_enabled(on: bool) {
    TELEMETRY.store(if on { T_ON } else { T_OFF }, Ordering::Relaxed);
}

// ---------------------------------------------------------------------
// Streaming per-stage sketch registry
// ---------------------------------------------------------------------

fn stream() -> &'static Mutex<BTreeMap<&'static str, QuantileSketch>> {
    static STREAM: OnceLock<Mutex<BTreeMap<&'static str, QuantileSketch>>> = OnceLock::new();
    STREAM.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Feeds one duration/value into the named stage's streaming sketch.
/// Called by every closing span and duration sample when tracing and
/// telemetry are both on; bounded memory (one sketch per distinct
/// `'static` stage name).
pub(crate) fn stream_observe(name: &'static str, value: u64) {
    if !telemetry_enabled() {
        return;
    }
    let mut map = match stream().lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    };
    map.entry(name).or_default().observe(value);
}

/// Snapshot (clone) of the streaming stage sketches.
pub fn stream_sketches() -> BTreeMap<&'static str, QuantileSketch> {
    match stream().lock() {
        Ok(g) => g.clone(),
        Err(p) => p.into_inner().clone(),
    }
}

/// Clears the streaming registry (tests).
pub fn stream_reset() {
    match stream().lock() {
        Ok(mut g) => g.clear(),
        Err(mut p) => p.get_mut().clear(),
    }
}

/// Total heap footprint of the streaming registry, for bounded-memory
/// assertions.
pub fn stream_footprint_bytes() -> usize {
    stream_sketches().values().map(QuantileSketch::footprint_bytes).sum()
}

// ---------------------------------------------------------------------
// Request ids + flight recorder
// ---------------------------------------------------------------------

/// Nanoseconds on the shared trace epoch — the clock span events and
/// [`RequestRecord::start_ns`] are stamped with. Public so request
/// producers outside this crate (the selection pipeline) can timestamp
/// records consistently with the trace stream.
pub fn now_ns() -> u64 {
    crate::span::now_ns()
}

/// Ring capacity of the flight recorder, in requests.
pub const FLIGHT_RING_CAPACITY: usize = 512;

/// Latency-history window size: the anomaly threshold is the configured
/// quantile over the current plus previous window (so "recent" spans at
/// most `2 × FLIGHT_WINDOW` requests).
pub const FLIGHT_WINDOW: u64 = 1024;

/// Minimum latency history before the anomaly trigger arms — a cold
/// recorder never fires on its first requests.
pub const FLIGHT_MIN_HISTORY: u64 = 64;

const FLIGHT_QUANTILE_KNOB: Knob =
    Knob::new("WISE_FLIGHT_QUANTILE", "a quantile in (0, 1), e.g. 0.99");

/// One selection request, as the flight recorder keeps it.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestRecord {
    /// Process-unique id (from [`next_request_id`]), propagated through
    /// cascade, pool dispatch and kernel spans via [`current_request`].
    pub id: u64,
    /// Start timestamp, nanoseconds on the trace epoch.
    pub start_ns: u64,
    /// End-to-end selection latency.
    pub latency_ns: u64,
    /// Chosen method label.
    pub method: String,
    /// Which path answered: `"stage1"`, `"stage2"`, or `"full"`.
    pub stage: &'static str,
    /// Stage-1 confidence margin, when the cascade ran.
    pub margin: Option<f64>,
    /// Stage-1 roofline prediction for the chosen method, seconds.
    pub predicted_s: Option<f64>,
    /// Measured seconds, filled in later by [`note_measured`].
    pub measured_s: Option<f64>,
    /// Hardware-counter deltas over the selection, when available.
    pub pmu: Option<PmuCounts>,
}

/// Aggregate flight-recorder state, for reports and snapshots.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FlightStats {
    pub requests: u64,
    pub anomalies: u64,
    pub ring_len: usize,
    /// The armed anomaly threshold, when history suffices.
    pub threshold_ns: Option<u64>,
}

struct FlightState {
    ring: VecDeque<RequestRecord>,
    window: QuantileSketch,
    prior: QuantileSketch,
    requests: u64,
    anomalies: u64,
    /// Request count at the last dump (rate limit: one dump per
    /// window's worth of requests).
    last_dump_at: u64,
    last_dump: Option<String>,
    quantile: f64,
    dir: Option<PathBuf>,
    dir_from_env: bool,
}

impl FlightState {
    fn threshold_ns(&self) -> Option<u64> {
        let mut hist = self.prior.clone();
        hist.merge(&self.window);
        if hist.count() < FLIGHT_MIN_HISTORY {
            return None;
        }
        // Inflate the estimate by γ: the sketch may undershoot the true
        // quantile by up to α (relative), and a request sitting exactly
        // at the quantile must never flag. The armed threshold is an
        // upper bound on the true quantile value.
        let est = hist.quantile(self.quantile)? as f64;
        let gamma = (1.0 + hist.alpha()) / (1.0 - hist.alpha());
        Some((est * gamma).ceil() as u64)
    }
}

fn flight() -> &'static Mutex<FlightState> {
    static FLIGHT: OnceLock<Mutex<FlightState>> = OnceLock::new();
    FLIGHT.get_or_init(|| {
        let quantile = FLIGHT_QUANTILE_KNOB
            .read("trace.flight_env_invalid", "keeping the default 0.99 quantile", |norm| {
                norm.parse::<f64>().ok().filter(|q| *q > 0.0 && *q < 1.0)
            })
            .unwrap_or(0.99);
        let dir =
            std::env::var("WISE_FLIGHT_DIR").ok().filter(|d| !d.is_empty()).map(PathBuf::from);
        Mutex::new(FlightState {
            ring: VecDeque::with_capacity(FLIGHT_RING_CAPACITY),
            window: QuantileSketch::default(),
            prior: QuantileSketch::default(),
            requests: 0,
            anomalies: 0,
            last_dump_at: 0,
            last_dump: None,
            quantile,
            dir_from_env: dir.is_some(),
            dir,
        })
    })
}

fn flight_lock() -> std::sync::MutexGuard<'static, FlightState> {
    flight().lock().unwrap_or_else(|p| p.into_inner())
}

static NEXT_REQUEST: AtomicU64 = AtomicU64::new(1);

/// Allocates the next process-unique request id.
pub fn next_request_id() -> u64 {
    NEXT_REQUEST.fetch_add(1, Ordering::Relaxed)
}

thread_local! {
    static CURRENT_REQUEST: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// The request id attributed to work on the calling thread (0 = none).
/// `pipeline.select` sets it for the selection scope and the worker
/// pool forwards the dispatcher's id to its workers, so kernel-level
/// code can attribute itself to the originating request.
pub fn current_request() -> u64 {
    CURRENT_REQUEST.with(|c| c.get())
}

/// Sets the calling thread's request id, returning the previous one
/// (restore it when the scope ends — see [`RequestScope`]).
pub fn set_current_request(id: u64) -> u64 {
    CURRENT_REQUEST.with(|c| c.replace(id))
}

/// RAII scope for [`set_current_request`].
pub struct RequestScope {
    prior: u64,
}

impl RequestScope {
    pub fn enter(id: u64) -> RequestScope {
        RequestScope { prior: set_current_request(id) }
    }
}

impl Drop for RequestScope {
    fn drop(&mut self) {
        set_current_request(self.prior);
    }
}

/// Records one completed selection request into the flight ring,
/// updates the latency history, and fires the anomaly trigger when the
/// request's latency exceeds the configured quantile of recent history.
/// Returns `true` when the request was flagged as an anomaly.
pub fn record_request(rec: RequestRecord) -> bool {
    if !telemetry_enabled() {
        return false;
    }
    let mut st = flight_lock();
    // Threshold first: the request must not raise the bar it is judged
    // against.
    let threshold = st.threshold_ns();
    let anomalous = threshold.is_some_and(|t| rec.latency_ns > t);
    st.window.observe(rec.latency_ns);
    if st.window.count() >= FLIGHT_WINDOW {
        st.prior = std::mem::take(&mut st.window);
    }
    if st.ring.len() == FLIGHT_RING_CAPACITY {
        st.ring.pop_front();
    }
    st.requests += 1;
    let anomaly_id = rec.id;
    st.ring.push_back(rec);
    if anomalous {
        st.anomalies += 1;
        crate::counter("flight.anomaly", 1);
        // Rate limit: at most one dump per window of requests.
        if st.requests - st.last_dump_at >= FLIGHT_WINDOW || st.last_dump_at == 0 {
            st.last_dump_at = st.requests;
            let dump = flight_dump_json(&st.ring, anomaly_id, threshold.unwrap_or(0));
            if let Some(dir) = st.dir.clone() {
                write_flight_dump(&dir, anomaly_id, &dump);
            }
            st.last_dump = Some(dump);
        }
    }
    anomalous
}

/// Fills in the measured execution time of a recorded request (matched
/// by id in the live ring; a no-op once the request aged out).
pub fn note_measured(id: u64, seconds: f64) {
    if !telemetry_enabled() || id == 0 {
        return;
    }
    let mut st = flight_lock();
    if let Some(rec) = st.ring.iter_mut().rev().find(|r| r.id == id) {
        rec.measured_s = Some(seconds);
    }
}

/// Current flight-recorder aggregates.
pub fn flight_stats() -> FlightStats {
    let st = flight_lock();
    FlightStats {
        requests: st.requests,
        anomalies: st.anomalies,
        ring_len: st.ring.len(),
        threshold_ns: st.threshold_ns(),
    }
}

/// The most recent anomaly dump (Chrome-trace JSON), kept in memory for
/// hosts without a `WISE_FLIGHT_DIR`.
pub fn last_anomaly_dump() -> Option<String> {
    flight_lock().last_dump.clone()
}

/// Clones the live request ring, most recent last (tests, `wise-top`).
pub fn flight_ring() -> Vec<RequestRecord> {
    flight_lock().ring.iter().cloned().collect()
}

/// Points anomaly dumps at a directory (`None` restores the
/// `WISE_FLIGHT_DIR` environment setting, or disables file dumps if the
/// variable is unset).
pub fn set_flight_dir(dir: Option<PathBuf>) {
    let mut st = flight_lock();
    match dir {
        Some(d) => {
            st.dir = Some(d);
            st.dir_from_env = false;
        }
        None => {
            st.dir =
                std::env::var("WISE_FLIGHT_DIR").ok().filter(|d| !d.is_empty()).map(PathBuf::from);
            st.dir_from_env = st.dir.is_some();
        }
    }
}

/// Overrides the anomaly quantile (tests; clamped into `(0, 1)`).
pub fn set_flight_quantile(q: f64) {
    flight_lock().quantile = q.clamp(1e-6, 1.0 - 1e-6);
}

/// Resets the recorder to cold state (tests).
pub fn flight_reset() {
    let mut st = flight_lock();
    st.ring.clear();
    st.window = QuantileSketch::default();
    st.prior = QuantileSketch::default();
    st.requests = 0;
    st.anomalies = 0;
    st.last_dump_at = 0;
    st.last_dump = None;
}

/// Renders the ring window around an anomaly as Chrome-trace JSON: one
/// balanced Begin/End pair per request (on its own tid so concurrent
/// requests cannot interleave) plus an instant `flight.anomaly` marker
/// at the offending request. Loads in Perfetto and passes the
/// `check_trace` balance validator.
fn flight_dump_json(ring: &VecDeque<RequestRecord>, anomaly_id: u64, threshold_ns: u64) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(ring.len() * 256 + 64);
    out.push_str("{\"traceEvents\":[\n");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
    };
    for rec in ring {
        let ts_us = rec.start_ns as f64 / 1000.0;
        let end_us = (rec.start_ns + rec.latency_ns) as f64 / 1000.0;
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"name\":\"request\",\"cat\":\"flight\",\"ph\":\"B\",\"ts\":{ts_us:.3},\
             \"pid\":1,\"tid\":{}}}",
            rec.id
        );
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"name\":\"request\",\"cat\":\"flight\",\"ph\":\"E\",\"ts\":{end_us:.3},\
             \"pid\":1,\"tid\":{},\"args\":{{\"id\":{},\"method\":\"",
            rec.id, rec.id
        );
        crate::export::write_escaped(&mut out, &rec.method);
        let _ = write!(out, "\",\"stage\":\"{}\"", rec.stage);
        // Non-finite floats (e.g. the f64::MAX all-leaves margin after
        // arithmetic) would render as invalid JSON; drop them instead.
        if let Some(m) = rec.margin.filter(|m| m.is_finite()) {
            let _ = write!(out, ",\"margin\":{m}");
        }
        if let Some(p) = rec.predicted_s.filter(|p| p.is_finite()) {
            let _ = write!(out, ",\"predicted_s\":{p}");
        }
        if let Some(m) = rec.measured_s.filter(|m| m.is_finite()) {
            let _ = write!(out, ",\"measured_s\":{m}");
        }
        if let Some(pmu) = &rec.pmu {
            let _ = write!(
                out,
                ",\"cycles\":{},\"instructions\":{},\"llc_misses\":{}",
                pmu.cycles, pmu.instructions, pmu.llc_misses
            );
        }
        out.push_str("}}");
        if rec.id == anomaly_id {
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"name\":\"flight.anomaly\",\"cat\":\"flight\",\"ph\":\"i\",\"s\":\"g\",\
                 \"ts\":{end_us:.3},\"pid\":1,\"tid\":{},\
                 \"args\":{{\"latency_ns\":{},\"threshold_ns\":{threshold_ns}}}}}",
                rec.id, rec.latency_ns
            );
        }
    }
    out.push_str("\n],\"displayTimeUnit\":\"ns\"}\n");
    out
}

fn write_flight_dump(dir: &Path, id: u64, dump: &str) {
    let write = || -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("flight_{id}.json"));
        std::fs::write(&path, dump)?;
        // Stable alias for scripts/CI that cannot glob.
        std::fs::write(dir.join("flight_latest.json"), dump)?;
        Ok(())
    };
    if let Err(e) = write() {
        eprintln!("[wise] flight-recorder dump failed ({}): {e}", dir.display());
    }
}

// ---------------------------------------------------------------------
// Drift gauge (mirrored by wise-core's drift monitor)
// ---------------------------------------------------------------------

/// Coarse drift verdict, as the run report / ledger / snapshot carry
/// it. Computed by `wise_core::drift`; mirrored here so the
/// dependency-free exporters can render it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftLevel {
    Stable,
    Warning,
    RetrainSuggested,
}

impl DriftLevel {
    /// Stable snake-ish label used in every export.
    pub fn label(self) -> &'static str {
        match self {
            DriftLevel::Stable => "stable",
            DriftLevel::Warning => "warning",
            DriftLevel::RetrainSuggested => "retrain-suggested",
        }
    }

    pub fn parse(s: &str) -> Option<DriftLevel> {
        match s {
            "stable" => Some(DriftLevel::Stable),
            "warning" => Some(DriftLevel::Warning),
            "retrain-suggested" => Some(DriftLevel::RetrainSuggested),
            _ => None,
        }
    }
}

/// One exported drift reading.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DriftSnapshot {
    pub level: DriftLevel,
    /// EWMA of measured/predicted execution time, permille.
    pub regret_permille: u64,
    /// EWMA of the cascade fallthrough indicator, permille.
    pub fallthrough_permille: u64,
    /// Executions observed by the monitor.
    pub observed: u64,
}

static DRIFT_LEVEL: AtomicU8 = AtomicU8::new(0);
static DRIFT_REGRET: AtomicU64 = AtomicU64::new(0);
static DRIFT_FALLTHROUGH: AtomicU64 = AtomicU64::new(0);
static DRIFT_OBSERVED: AtomicU64 = AtomicU64::new(0);

/// Publishes the drift monitor's current reading (called by
/// `wise_core::drift` after each observation).
pub fn set_drift_gauge(snapshot: DriftSnapshot) {
    let code = match snapshot.level {
        DriftLevel::Stable => 0,
        DriftLevel::Warning => 1,
        DriftLevel::RetrainSuggested => 2,
    };
    DRIFT_LEVEL.store(code, Ordering::Relaxed);
    DRIFT_REGRET.store(snapshot.regret_permille, Ordering::Relaxed);
    DRIFT_FALLTHROUGH.store(snapshot.fallthrough_permille, Ordering::Relaxed);
    DRIFT_OBSERVED.store(snapshot.observed, Ordering::Relaxed);
}

/// The last published drift reading (all-zero `Stable` before the
/// monitor ever reported).
pub fn drift_gauge() -> DriftSnapshot {
    let level = match DRIFT_LEVEL.load(Ordering::Relaxed) {
        1 => DriftLevel::Warning,
        2 => DriftLevel::RetrainSuggested,
        _ => DriftLevel::Stable,
    };
    DriftSnapshot {
        level,
        regret_permille: DRIFT_REGRET.load(Ordering::Relaxed),
        fallthrough_permille: DRIFT_FALLTHROUGH.load(Ordering::Relaxed),
        observed: DRIFT_OBSERVED.load(Ordering::Relaxed),
    }
}

// ---------------------------------------------------------------------
// Periodic snapshot exporter
// ---------------------------------------------------------------------

const SNAPSHOT_SECS_KNOB: Knob = Knob::new("WISE_SNAPSHOT_SECS", "a positive number of seconds");

/// Renders the live telemetry state (streaming sketches, drift gauge,
/// flight stats) as `metrics_snapshot.json` content. Pure read — does
/// not drain the trace rings, so it can run forever alongside them.
pub fn snapshot_json() -> String {
    use std::fmt::Write as _;
    let stages = stream_sketches();
    let drift = drift_gauge();
    let fs = flight_stats();
    let mut out = String::with_capacity(1024);
    out.push_str("{\n");
    let _ = write!(out, "  \"schema_version\": 1,\n  \"ts_ns\": {},\n", crate::span::now_ns());
    out.push_str("  \"pmu_status\": \"");
    crate::export::write_escaped(&mut out, &crate::pmu::status_label());
    out.push_str("\",\n");
    let _ = write!(out, "  \"dropped_events\": {},\n", crate::dropped_events());
    out.push_str("  \"stages\": {\n");
    let mut first = true;
    for (name, sk) in &stages {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str("    \"");
        crate::export::write_escaped(&mut out, name);
        out.push('"');
        let q = |p: f64| sk.quantile(p).unwrap_or(0);
        let _ = write!(
            out,
            ": {{\"count\":{},\"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{},\"max_ns\":{},\
             \"total_ns\":{},\"alpha\":{}}}",
            sk.count(),
            q(0.50),
            q(0.95),
            q(0.99),
            sk.max().unwrap_or(0),
            sk.sum() as u64,
            sk.alpha()
        );
    }
    out.push_str("\n  },\n");
    let _ = write!(
        out,
        "  \"drift\": {{\"status\":\"{}\",\"regret_permille\":{},\"fallthrough_permille\":{},\
         \"observed\":{}}},\n",
        drift.level.label(),
        drift.regret_permille,
        drift.fallthrough_permille,
        drift.observed
    );
    let _ = write!(
        out,
        "  \"flight\": {{\"requests\":{},\"anomalies\":{},\"ring\":{},\"threshold_ns\":{}}}\n",
        fs.requests,
        fs.anomalies,
        fs.ring_len,
        fs.threshold_ns.map_or("null".to_string(), |t| t.to_string())
    );
    out.push_str("}\n");
    out
}

/// Writes [`snapshot_json`] atomically (tmp + rename) so a concurrent
/// reader never sees a torn file.
pub fn write_snapshot(path: &Path) -> std::io::Result<()> {
    let tmp = path.with_extension("json.tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(snapshot_json().as_bytes())?;
        f.sync_all().ok();
    }
    std::fs::rename(&tmp, path)
}

/// Handle to the background snapshot thread; stops (and writes one
/// final snapshot) on [`SnapshotHandle::stop`] or drop.
pub struct SnapshotHandle {
    stop: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<()>>,
    path: PathBuf,
}

impl SnapshotHandle {
    /// The snapshot file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Stops the thread and writes a final snapshot.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for SnapshotHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Starts a background thread writing [`snapshot_json`] to `path` every
/// `every` (plus once at shutdown, so short-lived processes still leave
/// a final state behind).
pub fn start_snapshot_thread(path: PathBuf, every: Duration) -> SnapshotHandle {
    let stop = Arc::new(AtomicBool::new(false));
    let stop_t = Arc::clone(&stop);
    let path_t = path.clone();
    let join = std::thread::Builder::new()
        .name("wise-snapshot".to_string())
        .spawn(move || {
            let tick = Duration::from_millis(50).min(every);
            let mut elapsed = Duration::ZERO;
            loop {
                if stop_t.load(Ordering::Relaxed) {
                    break;
                }
                std::thread::sleep(tick);
                elapsed += tick;
                if elapsed >= every {
                    elapsed = Duration::ZERO;
                    if let Err(e) = write_snapshot(&path_t) {
                        eprintln!("[wise] snapshot write failed ({}): {e}", path_t.display());
                    }
                }
            }
            if let Err(e) = write_snapshot(&path_t) {
                eprintln!("[wise] final snapshot write failed ({}): {e}", path_t.display());
            }
        })
        .expect("spawn wise-snapshot thread");
    SnapshotHandle { stop, join: Some(join), path }
}

/// Starts the snapshot thread when `WISE_SNAPSHOT=<path>` is set in the
/// environment; interval from `WISE_SNAPSHOT_SECS` (default 5).
pub fn snapshot_from_env() -> Option<SnapshotHandle> {
    let path = std::env::var("WISE_SNAPSHOT").ok().filter(|p| !p.is_empty())?;
    let secs = SNAPSHOT_SECS_KNOB
        .read("trace.snapshot_env_invalid", "keeping the 5s default", |norm| {
            norm.parse::<f64>().ok().filter(|s| *s > 0.0)
        })
        .unwrap_or(5.0);
    Some(start_snapshot_thread(PathBuf::from(path), Duration::from_secs_f64(secs)))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift64* stream for the property-style tests
    /// (the crate is dependency-free, so no proptest here).
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545F4914F6CDD1D)
        }
    }

    fn assert_within_alpha(sk: &QuantileSketch, est: u64, v: u64) {
        let bound = sk.alpha() * v as f64 + 1.0 + 1e-9 * v as f64;
        assert!(
            (est as f64 - v as f64).abs() <= bound,
            "estimate {est} outside alpha={} bound of true value {v}",
            sk.alpha()
        );
    }

    #[test]
    fn sketch_relative_error_bound_across_the_u64_range() {
        // Every observed value, re-estimated through its own bucket,
        // must sit within alpha. Sweep powers spanning the full u64
        // domain plus random values at every magnitude.
        let mut sk = QuantileSketch::new(DEFAULT_ALPHA);
        let mut values: Vec<u64> = vec![1, 2, 3, 10, 255, 4096, 1 << 32, u64::MAX];
        let mut rng = Rng(0x9E3779B97F4A7C15);
        for shift in 0..64 {
            values.push(1u64 << shift);
            values.push((rng.next() >> (63 - shift)).max(1));
        }
        for &v in &values {
            sk.observe(v);
        }
        for &v in &values {
            let mut solo = QuantileSketch::new(DEFAULT_ALPHA);
            solo.observe(v);
            let est = solo.quantile(0.5).unwrap();
            assert_within_alpha(&solo, est, v);
        }
        // Footprint stays under the documented hard cap.
        assert!(sk.footprint_bytes() <= 4096 * 8, "footprint {}", sk.footprint_bytes());
    }

    #[test]
    fn sketch_quantiles_track_exact_order_statistics() {
        let mut rng = Rng(42);
        let mut sk = QuantileSketch::new(DEFAULT_ALPHA);
        let mut exact: Vec<u64> = Vec::new();
        for _ in 0..10_000 {
            // Log-uniform-ish latencies between ~100ns and ~100ms.
            let v = 100 + (rng.next() % (1u64 << (10 + (rng.next() % 18) as u32)));
            sk.observe(v);
            exact.push(v);
        }
        exact.sort_unstable();
        for q in [0.01, 0.25, 0.50, 0.90, 0.95, 0.99, 1.0] {
            let rank = (q * (exact.len() - 1) as f64).round() as usize;
            let truth = exact[rank];
            let est = sk.quantile(q).unwrap();
            assert_within_alpha(&sk, est, truth);
        }
    }

    #[test]
    fn sketch_merge_is_associative_and_commutative() {
        let mut rng = Rng(7);
        let mut parts: Vec<QuantileSketch> = Vec::new();
        let mut whole = QuantileSketch::new(DEFAULT_ALPHA);
        for _ in 0..4 {
            let mut part = QuantileSketch::new(DEFAULT_ALPHA);
            for _ in 0..500 {
                let v = rng.next() % 1_000_000;
                part.observe(v);
                whole.observe(v);
            }
            parts.push(part);
        }
        // (((a+b)+c)+d)
        let mut left = parts[0].clone();
        for p in &parts[1..] {
            left.merge(p);
        }
        // (a+(b+(c+d)))
        let right = parts[3].clone();
        let mut cd = parts[2].clone();
        cd.merge(&right);
        let mut bcd = parts[1].clone();
        bcd.merge(&cd);
        let mut abcd = parts[0].clone();
        abcd.merge(&bcd);
        // Reversed order.
        let mut rev = parts[3].clone();
        for p in parts[..3].iter().rev() {
            rev.merge(p);
        }
        assert_eq!(left, abcd, "associativity");
        assert_eq!(left, rev, "commutativity");
        // Exact merge: identical to observing the concatenated stream.
        assert_eq!(left, whole, "merge exactness");
    }

    #[test]
    fn sketch_json_round_trip_is_byte_stable() {
        let mut rng = Rng(99);
        let mut sk = QuantileSketch::new(DEFAULT_ALPHA);
        sk.observe(0);
        sk.observe(0);
        for _ in 0..2_000 {
            sk.observe(rng.next() % 10_000_000);
        }
        let json1 = sk.to_json();
        let parsed = crate::export::json::parse(&json1).expect("valid json");
        let back = QuantileSketch::from_json(&parsed).expect("schema");
        assert_eq!(back, sk);
        assert_eq!(back.to_json(), json1, "byte-stable round trip");
        assert_eq!(back.quantile(0.95), sk.quantile(0.95));
        assert_eq!(back.min(), sk.min());
        assert_eq!(back.max(), sk.max());
    }

    #[test]
    fn sketch_handles_zero_and_empty() {
        let mut sk = QuantileSketch::default();
        assert_eq!(sk.quantile(0.5), None);
        assert_eq!(sk.min(), None);
        sk.observe(0);
        sk.observe(0);
        sk.observe(0);
        assert_eq!(sk.quantile(0.5), Some(0));
        assert_eq!(sk.min(), Some(0));
        assert_eq!(sk.max(), Some(0));
    }

    #[test]
    fn flight_recorder_flags_a_slow_request_and_dumps_a_valid_trace() {
        set_telemetry_enabled(true);
        flight_reset();
        set_flight_quantile(0.99);
        let mk = |id: u64, latency: u64| RequestRecord {
            id,
            start_ns: id * 10_000,
            latency_ns: latency,
            method: "CSR:Dyn:v8".to_string(),
            stage: "stage1",
            margin: Some(1.5),
            predicted_s: Some(1e-4),
            measured_s: None,
            pmu: None,
        };
        let mut id = 0;
        for _ in 0..200 {
            id += 1;
            assert!(!record_request(mk(id, 10_000 + id % 64)), "baseline flagged");
        }
        let stats = flight_stats();
        assert_eq!(stats.requests, 200);
        assert_eq!(stats.anomalies, 0);
        assert!(stats.threshold_ns.is_some(), "history must be armed");
        // One request 100x the p99 of history: must flag and dump.
        id += 1;
        assert!(record_request(mk(id, 1_200_000)), "slow request not flagged");
        note_measured(id, 0.5);
        let dump = last_anomaly_dump().expect("anomaly dump");
        crate::export::validate_chrome_trace(&dump).expect("dump must be a valid trace");
        assert!(dump.contains("flight.anomaly"), "missing anomaly marker");
        assert!(dump.contains("CSR:Dyn:v8"), "missing method label");
        let ring = flight_ring();
        assert_eq!(ring.last().unwrap().measured_s, Some(0.5));
        flight_reset();
    }

    #[test]
    fn flight_ring_is_bounded() {
        set_telemetry_enabled(true);
        flight_reset();
        for i in 0..(FLIGHT_RING_CAPACITY as u64 * 2) {
            record_request(RequestRecord {
                id: i + 1,
                start_ns: i,
                latency_ns: 1000,
                method: "m".to_string(),
                stage: "full",
                margin: None,
                predicted_s: None,
                measured_s: None,
                pmu: None,
            });
        }
        let stats = flight_stats();
        assert_eq!(stats.ring_len, FLIGHT_RING_CAPACITY);
        assert_eq!(stats.requests, FLIGHT_RING_CAPACITY as u64 * 2);
        flight_reset();
    }

    #[test]
    fn request_scope_nests_and_restores() {
        assert_eq!(current_request(), 0);
        {
            let _a = RequestScope::enter(7);
            assert_eq!(current_request(), 7);
            {
                let _b = RequestScope::enter(9);
                assert_eq!(current_request(), 9);
            }
            assert_eq!(current_request(), 7);
        }
        assert_eq!(current_request(), 0);
    }

    #[test]
    fn snapshot_json_is_valid_and_carries_the_sections() {
        set_telemetry_enabled(true);
        stream_observe("unit.snapshot.stage", 1234);
        stream_observe("unit.snapshot.stage", 2345);
        set_drift_gauge(DriftSnapshot {
            level: DriftLevel::Warning,
            regret_permille: 1700,
            fallthrough_permille: 250,
            observed: 40,
        });
        let json = snapshot_json();
        let v = crate::export::json::parse(&json).expect("valid json");
        let obj = v.as_object().expect("object");
        assert_eq!(obj.get("schema_version").and_then(|v| v.as_f64()), Some(1.0));
        let stages = obj.get("stages").and_then(|v| v.as_object()).expect("stages");
        let st = stages.get("unit.snapshot.stage").and_then(|v| v.as_object()).expect("stage");
        assert_eq!(st.get("count").and_then(|v| v.as_f64()), Some(2.0));
        let drift = obj.get("drift").and_then(|v| v.as_object()).expect("drift");
        assert_eq!(drift.get("status").and_then(|v| v.as_str()), Some("warning"));
        assert!(obj.get("flight").is_some());
        assert!(obj.get("pmu_status").and_then(|v| v.as_str()).is_some());
    }
}
