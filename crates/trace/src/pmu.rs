//! Hardware performance counters via raw `perf_event_open(2)` syscalls.
//!
//! Like the rest of `wise-trace`, this module has **zero dependencies**:
//! no `libc`, no `perf-event` crate — the syscall, `ioctl`, `read` and
//! `close` entry points are invoked directly with inline assembly on
//! x86-64 Linux (any other target compiles a stub that reports
//! [`PmuStatus::Unavailable`]).
//!
//! # Counter group
//!
//! Each recording thread opens one counter *group* — cycles (leader),
//! instructions, LLC loads, LLC load misses, branch misses — so all
//! five counters are scheduled onto the PMU together and one `read`
//! returns a consistent snapshot. Members that the host PMU lacks
//! (common under virtualization) are skipped individually; only a
//! leader failure makes the PMU unavailable. Counts are scaled by
//! `time_enabled / time_running` when the kernel multiplexes the group.
//!
//! Groups are per-thread (`inherit` cannot be combined with
//! `PERF_FORMAT_GROUP`), so a span's deltas cover **the calling
//! thread only**. For multi-threaded regions the deltas measure the
//! dispatching thread's share; run the region single-threaded when a
//! whole-workload attribution is needed (see `wise_perf::residual`).
//!
//! # Graceful degradation
//!
//! The first status query probes the syscall **once**: when
//! `perf_event_paranoid`, a seccomp profile, or the platform denies it,
//! the module warns **once** on stderr and every later operation is a
//! no-op — spans fall back to timestamps only, with the event stream
//! bit-identical to a build without PMU support. The outcome is
//! surfaced as an explicit [`PmuStatus`] in run reports and the ledger,
//! never as an error.
//!
//! # `WISE_PMU`
//!
//! `0`/`off` disables the probe entirely (no syscalls are attempted),
//! `1`/`on` and `auto` (the default) probe on first use. Malformed
//! values warn once, bump the `trace.pmu_env_invalid` counter, and fall
//! back to `auto` — the same contract as `WISE_THREADS` / `WISE_SIMD`.

use crate::env_knob::{Knob, KnobError};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Once, OnceLock};

/// Which hardware counter a [`Phase::Pmu`](crate::Phase::Pmu) event or
/// [`PmuCounts`] field refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PmuKind {
    Cycles,
    Instructions,
    LlcLoads,
    LlcMisses,
    BranchMisses,
}

impl PmuKind {
    /// All kinds, in group-open (and report) order; `Cycles` is the
    /// group leader.
    pub const ALL: [PmuKind; 5] = [
        PmuKind::Cycles,
        PmuKind::Instructions,
        PmuKind::LlcLoads,
        PmuKind::LlcMisses,
        PmuKind::BranchMisses,
    ];

    /// Stable snake_case label used in exports (`<span>.pmu.<label>`).
    pub fn label(self) -> &'static str {
        match self {
            PmuKind::Cycles => "cycles",
            PmuKind::Instructions => "instructions",
            PmuKind::LlcLoads => "llc_loads",
            PmuKind::LlcMisses => "llc_misses",
            PmuKind::BranchMisses => "branch_misses",
        }
    }

    fn idx(self) -> usize {
        match self {
            PmuKind::Cycles => 0,
            PmuKind::Instructions => 1,
            PmuKind::LlcLoads => 2,
            PmuKind::LlcMisses => 3,
            PmuKind::BranchMisses => 4,
        }
    }
}

/// One snapshot (or delta) of the counter group. Counters the host
/// could not open read as 0.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PmuCounts {
    pub cycles: u64,
    pub instructions: u64,
    pub llc_loads: u64,
    pub llc_misses: u64,
    pub branch_misses: u64,
}

impl PmuCounts {
    pub fn get(&self, kind: PmuKind) -> u64 {
        match kind {
            PmuKind::Cycles => self.cycles,
            PmuKind::Instructions => self.instructions,
            PmuKind::LlcLoads => self.llc_loads,
            PmuKind::LlcMisses => self.llc_misses,
            PmuKind::BranchMisses => self.branch_misses,
        }
    }

    fn set(&mut self, kind: PmuKind, value: u64) {
        match kind {
            PmuKind::Cycles => self.cycles = value,
            PmuKind::Instructions => self.instructions = value,
            PmuKind::LlcLoads => self.llc_loads = value,
            PmuKind::LlcMisses => self.llc_misses = value,
            PmuKind::BranchMisses => self.branch_misses = value,
        }
    }

    /// Per-field saturating difference `self - base` (counter snapshots
    /// are monotonic, but multiplex scaling can jitter slightly).
    pub fn delta_since(&self, base: &PmuCounts) -> PmuCounts {
        let mut d = PmuCounts::default();
        for kind in PmuKind::ALL {
            d.set(kind, self.get(kind).saturating_sub(base.get(kind)));
        }
        d
    }

    /// Instructions per cycle, when both counters are live.
    pub fn ipc(&self) -> Option<f64> {
        if self.cycles > 0 && self.instructions > 0 {
            Some(self.instructions as f64 / self.cycles as f64)
        } else {
            None
        }
    }

    /// LLC load miss rate in `[0, 1]`, when LLC loads are live.
    pub fn llc_miss_rate(&self) -> Option<f64> {
        if self.llc_loads > 0 {
            Some((self.llc_misses as f64 / self.llc_loads as f64).min(1.0))
        } else {
            None
        }
    }
}

/// Outcome of the one-shot PMU probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PmuStatus {
    /// `WISE_PMU=0|off`: no syscall is ever attempted.
    Off,
    /// The counter group opened; `span_pmu` spans carry deltas.
    Available,
    /// The syscall was denied or the events are unsupported; spans fall
    /// back to timestamps only (explicitly surfaced, never an error).
    Unavailable,
}

/// Parsed value of the `WISE_PMU` environment knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PmuEnv {
    Off,
    On,
    Auto,
}

/// The `WISE_PMU` knob, on the shared [`crate::env_knob`] grammar.
const PMU_KNOB: Knob = Knob::new("WISE_PMU", "a pmu mode (expected 0/off, 1/on, or auto)");

/// Parses a `WISE_PMU` value. `None` (unset) means `auto`; values are
/// trimmed and case-insensitive ([`crate::env_knob`] grammar).
pub fn parse_wise_pmu(raw: Option<&str>) -> Result<PmuEnv, KnobError> {
    PMU_KNOB
        .parse(raw, |norm| match norm {
            "0" | "off" => Some(PmuEnv::Off),
            "1" | "on" => Some(PmuEnv::On),
            "auto" => Some(PmuEnv::Auto),
            _ => None,
        })
        .map(|env| env.unwrap_or(PmuEnv::Auto))
}

const ST_UNINIT: u8 = 0;
const ST_OFF: u8 = 1;
const ST_AVAILABLE: u8 = 2;
const ST_UNAVAILABLE: u8 = 3;

static STATUS: AtomicU8 = AtomicU8::new(ST_UNINIT);

fn unavailable_why() -> &'static OnceLock<String> {
    static WHY: OnceLock<String> = OnceLock::new();
    &WHY
}

/// Current PMU status. The first call reads `WISE_PMU` and (unless off)
/// probes the syscall once; later calls are one relaxed atomic load.
pub fn status() -> PmuStatus {
    match STATUS.load(Ordering::Relaxed) {
        ST_OFF => PmuStatus::Off,
        ST_AVAILABLE => PmuStatus::Available,
        ST_UNAVAILABLE => PmuStatus::Unavailable,
        _ => resolve_slow(),
    }
}

/// Human-readable status marker used by the run report, perf summary
/// and ledger: `off`, `available`, or `unavailable (<reason>)`.
pub fn status_label() -> String {
    match status() {
        PmuStatus::Off => "off".to_string(),
        PmuStatus::Available => "available".to_string(),
        PmuStatus::Unavailable => {
            let why = unavailable_why().get().map(String::as_str).unwrap_or("forced");
            format!("unavailable ({why})")
        }
    }
}

#[cold]
fn resolve_slow() -> PmuStatus {
    let env = match parse_wise_pmu(std::env::var("WISE_PMU").ok().as_deref()) {
        Ok(env) => env,
        Err(err) => {
            PMU_KNOB.warn_once(&err, "trace.pmu_env_invalid", "defaulting to auto");
            PmuEnv::Auto
        }
    };
    let resolved = match env {
        PmuEnv::Off => PmuStatus::Off,
        PmuEnv::On | PmuEnv::Auto => match sys::open_group() {
            Ok(group) => {
                // Keep the probe group: it becomes this thread's group.
                THREAD_GROUP.with(|t| {
                    let mut t = t.borrow_mut();
                    t.init = true;
                    t.group = Some(group);
                });
                PmuStatus::Available
            }
            Err(why) => {
                let _ = unavailable_why().set(why.clone());
                static WARNED: Once = Once::new();
                WARNED.call_once(|| {
                    eprintln!(
                        "wise-trace: pmu unavailable ({why}); continuing with timestamps only"
                    );
                });
                PmuStatus::Unavailable
            }
        },
    };
    STATUS.store(
        match resolved {
            PmuStatus::Off => ST_OFF,
            PmuStatus::Available => ST_AVAILABLE,
            PmuStatus::Unavailable => ST_UNAVAILABLE,
        },
        Ordering::Relaxed,
    );
    resolved
}

/// Overrides the probed status (tests and tools). `None` re-arms the
/// lazy env-probe path. Forcing [`PmuStatus::Available`] does not
/// conjure counters — threads whose group cannot open simply record no
/// deltas.
pub fn force_status(status: Option<PmuStatus>) {
    let code = match status {
        None => ST_UNINIT,
        Some(PmuStatus::Off) => ST_OFF,
        Some(PmuStatus::Available) => ST_AVAILABLE,
        Some(PmuStatus::Unavailable) => ST_UNAVAILABLE,
    };
    STATUS.store(code, Ordering::Relaxed);
}

struct ThreadGroup {
    init: bool,
    group: Option<sys::Group>,
}

thread_local! {
    static THREAD_GROUP: RefCell<ThreadGroup> =
        const { RefCell::new(ThreadGroup { init: false, group: None }) };
}

fn with_group<R>(f: impl FnOnce(&sys::Group) -> R) -> Option<R> {
    if status() != PmuStatus::Available {
        return None;
    }
    THREAD_GROUP.with(|t| {
        let mut t = t.borrow_mut();
        if !t.init {
            t.init = true;
            t.group = sys::open_group().ok();
        }
        t.group.as_ref().map(f)
    })
}

/// Reads the calling thread's counter group. `None` when the PMU is
/// off/unavailable or this thread's group failed to open.
pub fn read_counts() -> Option<PmuCounts> {
    with_group(|g| g.read()).flatten().map(|(counts, _)| counts)
}

/// Baseline snapshot taken by `span_pmu` at span open.
#[inline]
pub(crate) fn span_baseline() -> Option<PmuCounts> {
    // Only reached with tracing enabled, so the one-shot probe cost
    // never leaks into untraced runs.
    read_counts()
}

/// Emits one `Phase::Pmu` event per *live* counter with the delta since
/// `base`, stamped at the span's end timestamp (so the events sort just
/// inside the closing span).
pub(crate) fn emit_span_delta(name: &'static str, base: &PmuCounts, ts_ns: u64) {
    let Some((now, mask)) = with_group(|g| g.read()).flatten() else { return };
    let delta = now.delta_since(base);
    for kind in PmuKind::ALL {
        if mask & (1 << kind.idx()) != 0 {
            crate::span::record(name, crate::span::Phase::Pmu(kind), ts_ns, delta.get(kind));
        }
    }
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod sys {
    //! Raw x86-64 Linux backend: inline-asm syscalls, no libc.

    use super::{PmuCounts, PmuKind};

    const NR_READ: u64 = 0;
    const NR_CLOSE: u64 = 3;
    const NR_IOCTL: u64 = 16;
    const NR_PERF_EVENT_OPEN: u64 = 298;

    const PERF_TYPE_HARDWARE: u32 = 0;
    const PERF_TYPE_HW_CACHE: u32 = 3;
    const PERF_COUNT_HW_CPU_CYCLES: u64 = 0;
    const PERF_COUNT_HW_INSTRUCTIONS: u64 = 1;
    const PERF_COUNT_HW_BRANCH_MISSES: u64 = 5;
    /// `LL | (op READ << 8) | (result ACCESS << 16)`
    const HW_CACHE_LL_READ_ACCESS: u64 = 2;
    /// `LL | (op READ << 8) | (result MISS << 16)`
    const HW_CACHE_LL_READ_MISS: u64 = 2 | (1 << 16);

    /// `TOTAL_TIME_ENABLED | TOTAL_TIME_RUNNING | GROUP`
    const READ_FORMAT: u64 = 1 | 2 | 8;
    /// `disabled | exclude_kernel | exclude_hv` (leader only).
    const FLAGS_LEADER: u64 = (1 << 0) | (1 << 5) | (1 << 6);
    /// `exclude_kernel | exclude_hv` — members follow the leader's
    /// enable state, so they must not be individually disabled.
    const FLAGS_MEMBER: u64 = (1 << 5) | (1 << 6);

    const PERF_EVENT_IOC_ENABLE: u64 = 0x2400;
    const PERF_IOC_FLAG_GROUP: u64 = 1;
    const PERF_FLAG_FD_CLOEXEC: u64 = 8;

    /// `perf_event_attr`, `PERF_ATTR_SIZE_VER5` layout (112 bytes).
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PerfEventAttr {
        type_: u32,
        size: u32,
        config: u64,
        sample_period: u64,
        sample_type: u64,
        read_format: u64,
        flags: u64,
        wakeup_events: u32,
        bp_type: u32,
        config1: u64,
        config2: u64,
        branch_sample_type: u64,
        sample_regs_user: u64,
        sample_stack_user: u32,
        clockid: i32,
        sample_regs_intr: u64,
        aux_watermark: u32,
        sample_max_stack: u16,
        reserved_2: u16,
    }

    const ATTR_SIZE: u32 = std::mem::size_of::<PerfEventAttr>() as u32;
    const _: () = assert!(std::mem::size_of::<PerfEventAttr>() == 112);

    fn attr(type_: u32, config: u64, leader: bool) -> PerfEventAttr {
        PerfEventAttr {
            type_,
            size: ATTR_SIZE,
            config,
            sample_period: 0,
            sample_type: 0,
            read_format: READ_FORMAT,
            flags: if leader { FLAGS_LEADER } else { FLAGS_MEMBER },
            wakeup_events: 0,
            bp_type: 0,
            config1: 0,
            config2: 0,
            branch_sample_type: 0,
            sample_regs_user: 0,
            sample_stack_user: 0,
            clockid: 0,
            sample_regs_intr: 0,
            aux_watermark: 0,
            sample_max_stack: 0,
            reserved_2: 0,
        }
    }

    /// Raw 5-argument syscall; returns the kernel's raw result
    /// (negative values are `-errno`).
    unsafe fn syscall5(nr: u64, a1: u64, a2: u64, a3: u64, a4: u64, a5: u64) -> i64 {
        let ret: i64;
        std::arch::asm!(
            "syscall",
            inlateout("rax") nr as i64 => ret,
            in("rdi") a1,
            in("rsi") a2,
            in("rdx") a3,
            in("r10") a4,
            in("r8") a5,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }

    fn errno_name(errno: i64) -> String {
        match errno {
            1 => "EPERM (check /proc/sys/kernel/perf_event_paranoid)".to_string(),
            2 => "ENOENT (event not supported by this PMU)".to_string(),
            13 => "EACCES (check /proc/sys/kernel/perf_event_paranoid)".to_string(),
            19 => "ENODEV".to_string(),
            22 => "EINVAL".to_string(),
            38 => "ENOSYS (syscall filtered?)".to_string(),
            95 => "EOPNOTSUPP".to_string(),
            other => format!("errno {other}"),
        }
    }

    fn perf_event_open(attr: &PerfEventAttr, group_fd: i64) -> Result<i32, i64> {
        let ret = unsafe {
            syscall5(
                NR_PERF_EVENT_OPEN,
                attr as *const PerfEventAttr as u64,
                0,               // pid: calling thread
                (-1i64) as u64,  // cpu: any
                group_fd as u64, // -1 for the leader
                PERF_FLAG_FD_CLOEXEC,
            )
        };
        if ret < 0 {
            Err(-ret)
        } else {
            Ok(ret as i32)
        }
    }

    fn close_fd(fd: i32) {
        unsafe { syscall5(NR_CLOSE, fd as u64, 0, 0, 0, 0) };
    }

    /// One thread's open counter group.
    pub(super) struct Group {
        /// All fds, leader first — the kernel reports values in this
        /// open order.
        fds: Vec<i32>,
        /// Kinds parallel to `fds`.
        kinds: Vec<PmuKind>,
        /// Bit per `PmuKind::idx()` that actually opened.
        mask: u8,
    }

    impl Drop for Group {
        fn drop(&mut self) {
            // Close members first, leader last.
            for &fd in self.fds.iter().rev() {
                close_fd(fd);
            }
        }
    }

    /// Opens the counter group on the calling thread. Members that fail
    /// are skipped; a leader failure is the group's failure.
    pub(super) fn open_group() -> Result<Group, String> {
        let leader = perf_event_open(&attr(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES, true), -1)
            .map_err(|e| format!("cycles leader: {}", errno_name(e)))?;
        let mut group = Group {
            fds: vec![leader],
            kinds: vec![PmuKind::Cycles],
            mask: 1 << PmuKind::Cycles.idx(),
        };
        let members: [(PmuKind, u32, u64); 4] = [
            (PmuKind::Instructions, PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS),
            (PmuKind::LlcLoads, PERF_TYPE_HW_CACHE, HW_CACHE_LL_READ_ACCESS),
            (PmuKind::LlcMisses, PERF_TYPE_HW_CACHE, HW_CACHE_LL_READ_MISS),
            (PmuKind::BranchMisses, PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES),
        ];
        for (kind, type_, config) in members {
            if let Ok(fd) = perf_event_open(&attr(type_, config, false), leader as i64) {
                group.fds.push(fd);
                group.kinds.push(kind);
                group.mask |= 1 << kind.idx();
            }
        }
        let ret = unsafe {
            syscall5(NR_IOCTL, leader as u64, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP, 0, 0)
        };
        if ret < 0 {
            return Err(format!("ioctl ENABLE: {}", errno_name(-ret)));
        }
        Ok(group)
    }

    impl Group {
        /// One group `read`: a consistent snapshot of every live
        /// counter, multiplex-scaled, plus the live-counter mask.
        pub(super) fn read(&self) -> Option<(PmuCounts, u8)> {
            // { nr, time_enabled, time_running, value[nr] }
            let mut buf = [0u64; 3 + PmuKind::ALL.len()];
            let want = (3 + self.fds.len()) * 8;
            let n = unsafe {
                syscall5(NR_READ, self.fds[0] as u64, buf.as_mut_ptr() as u64, want as u64, 0, 0)
            };
            if n < want as i64 {
                return None;
            }
            let (nr, enabled, running) = (buf[0] as usize, buf[1], buf[2]);
            if nr != self.fds.len() || running == 0 {
                return None;
            }
            let scale = enabled as f64 / running as f64;
            let mut counts = PmuCounts::default();
            for (i, &kind) in self.kinds.iter().enumerate() {
                counts.set(kind, (buf[3 + i] as f64 * scale).round() as u64);
            }
            Some((counts, self.mask))
        }
    }
}

#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
mod sys {
    //! Stub backend: every probe reports Unavailable.

    use super::{PmuCounts, PmuKind};

    pub(super) struct Group;

    pub(super) fn open_group() -> Result<Group, String> {
        Err("pmu backend requires x86-64 Linux (raw-syscall bindings)".to_string())
    }

    impl Group {
        pub(super) fn read(&self) -> Option<(PmuCounts, u8)> {
            let _ = PmuKind::ALL;
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // `status()` / probe tests live in the `tests/pmu_env.rs`
    // integration binary (own process) so they cannot race other unit
    // tests over the global status word or the environment.

    #[test]
    fn parse_accepts_every_documented_spelling() {
        assert_eq!(parse_wise_pmu(None), Ok(PmuEnv::Auto));
        assert_eq!(parse_wise_pmu(Some("0")), Ok(PmuEnv::Off));
        assert_eq!(parse_wise_pmu(Some("off")), Ok(PmuEnv::Off));
        assert_eq!(parse_wise_pmu(Some("OFF")), Ok(PmuEnv::Off));
        assert_eq!(parse_wise_pmu(Some("1")), Ok(PmuEnv::On));
        assert_eq!(parse_wise_pmu(Some("on")), Ok(PmuEnv::On));
        assert_eq!(parse_wise_pmu(Some(" On ")), Ok(PmuEnv::On));
        assert_eq!(parse_wise_pmu(Some("auto")), Ok(PmuEnv::Auto));
        assert_eq!(parse_wise_pmu(Some("Auto")), Ok(PmuEnv::Auto));
    }

    #[test]
    fn parse_rejects_empty_and_unknown() {
        assert_eq!(parse_wise_pmu(Some("")), Err(KnobError::Empty { knob: "WISE_PMU" }));
        assert_eq!(parse_wise_pmu(Some("   ")), Err(KnobError::Empty { knob: "WISE_PMU" }));
        for bad in ["yes", "2"] {
            let err = parse_wise_pmu(Some(bad)).unwrap_err();
            assert!(matches!(err, KnobError::Invalid { knob: "WISE_PMU", .. }), "{bad:?}");
        }
        let err = parse_wise_pmu(Some("bogus")).unwrap_err();
        assert!(err.to_string().contains("bogus"));
        assert!(parse_wise_pmu(Some("")).unwrap_err().to_string().contains("empty"));
    }

    #[test]
    fn counts_delta_and_derived_rates() {
        let base = PmuCounts { cycles: 100, instructions: 150, ..PmuCounts::default() };
        let now = PmuCounts {
            cycles: 1100,
            instructions: 2150,
            llc_loads: 400,
            llc_misses: 100,
            branch_misses: 7,
        };
        let d = now.delta_since(&base);
        assert_eq!(d.cycles, 1000);
        assert_eq!(d.instructions, 2000);
        assert_eq!(d.ipc(), Some(2.0));
        assert_eq!(d.llc_miss_rate(), Some(0.25));
        assert_eq!(d.branch_misses, 7);
        // Saturating: scaling jitter cannot underflow.
        assert_eq!(base.delta_since(&now).cycles, 0);
        assert_eq!(PmuCounts::default().ipc(), None);
        assert_eq!(PmuCounts::default().llc_miss_rate(), None);
    }

    #[test]
    fn kind_labels_are_stable() {
        let labels: Vec<&str> = PmuKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels, ["cycles", "instructions", "llc_loads", "llc_misses", "branch_misses"]);
        for (i, kind) in PmuKind::ALL.iter().enumerate() {
            assert_eq!(kind.idx(), i);
        }
    }
}
