//! The PMU degradation contract, end to end: with counters off (or
//! denied), `span_pmu` must behave exactly like `span` — same event
//! stream shape, and byte-identical trace artifacts and ledger records
//! except the explicit `pmu` status marker (which both paths carry).
//!
//! Runs as its own process because it owns the global enable flag and
//! forces the process-wide PMU status; everything lives in one `#[test]`
//! so the forced status is never raced by a sibling test.

use wise_trace::env_knob::KnobError;
use wise_trace::export::{chrome_trace_json, perf_summary_json};
use wise_trace::ledger::{BenchRecord, HostFingerprint};
use wise_trace::pmu::{self, force_status, parse_wise_pmu, PmuEnv};
use wise_trace::span::Event;
use wise_trace::{Phase, PmuStatus, Summary};

/// The pinned workload, parameterized only by which span constructor
/// the outer stage uses.
fn workload(use_pmu: bool) -> Vec<Event> {
    let _ = wise_trace::take_events();
    for i in 0..8u64 {
        let _outer = if use_pmu {
            wise_trace::span_pmu("kernel.spmv")
        } else {
            wise_trace::span("kernel.spmv")
        };
        let _inner = wise_trace::span("kernel.spmv.simd");
        wise_trace::counter("kernel.spmv.nnz", 1_000 + i);
        wise_trace::observe("model.residual.bytes", 900 + i);
    }
    wise_trace::take_events()
}

/// Strips the only legitimately run-dependent payload (timestamps and
/// span durations), keeping names, phases, order, tids and counter /
/// sample values.
fn normalized(events: &[Event]) -> Vec<Event> {
    events
        .iter()
        .map(|e| Event { ts_ns: 0, value: if e.phase == Phase::End { 0 } else { e.value }, ..*e })
        .collect()
}

#[test]
fn pmu_off_degrades_to_plain_spans_bit_identically() {
    wise_trace::set_enabled(true);
    force_status(Some(PmuStatus::Off));
    assert_eq!(pmu::status(), PmuStatus::Off);
    assert_eq!(pmu::status_label(), "off");
    assert!(pmu::read_counts().is_none(), "off must never read counters");

    let with_pmu = workload(true);
    let plain = workload(false);

    // No hardware-counter events may leak out with the PMU off, and the
    // stream must match the plain-span stream event for event.
    assert!(!with_pmu.iter().any(|e| matches!(e.phase, Phase::Pmu(_))));
    assert_eq!(normalized(&with_pmu), normalized(&plain));

    // The same holds under an explicit Unavailable (syscall denied):
    // spans degrade to timestamps with zero structural difference.
    force_status(Some(PmuStatus::Unavailable));
    let denied = workload(true);
    assert!(!denied.iter().any(|e| matches!(e.phase, Phase::Pmu(_))));
    assert_eq!(normalized(&denied), normalized(&plain));
    assert!(pmu::status_label().starts_with("unavailable"));

    // Every downstream artifact — Chrome trace, perf summary, ledger
    // record — must be byte-identical for the two normalized streams
    // (modulo the status marker, which we pin to one value here).
    force_status(Some(PmuStatus::Off));
    let (a, b) = (normalized(&with_pmu), normalized(&plain));
    assert_eq!(chrome_trace_json(&a), chrome_trace_json(&b));
    let (sa, sb) = (Summary::from_events(&a), Summary::from_events(&b));
    assert_eq!(sa.pmu_status, "off");
    assert_eq!(perf_summary_json(&sa), perf_summary_json(&sb));
    for st in sa.stages.values() {
        assert!(st.pmu.is_none(), "no per-stage counters with the PMU off");
    }
    let host = HostFingerprint { cpu_cores: 1, ..Default::default() };
    let ra = BenchRecord::from_summary(1, "pmu off", "fnv1a:0", host.clone(), &sa);
    let rb = BenchRecord::from_summary(1, "pmu off", "fnv1a:0", host, &sb);
    assert_eq!(ra.to_json(), rb.to_json());
    let section = ra.pmu.as_ref().expect("explicit marker survives degradation");
    assert_eq!(section.status, "off");
    assert!(section.stages.is_empty());

    // The WISE_PMU knob parses exactly the documented spellings.
    force_status(None); // leave the process re-armed for other binaries
    assert_eq!(parse_wise_pmu(None), Ok(PmuEnv::Auto));
    for ok in [("0", PmuEnv::Off), ("off", PmuEnv::Off), ("OFF", PmuEnv::Off)] {
        assert_eq!(parse_wise_pmu(Some(ok.0)), Ok(ok.1));
    }
    for ok in [("1", PmuEnv::On), ("on", PmuEnv::On), (" Auto ", PmuEnv::Auto)] {
        assert_eq!(parse_wise_pmu(Some(ok.0)), Ok(ok.1));
    }
    assert_eq!(parse_wise_pmu(Some("  ")), Err(KnobError::Empty { knob: "WISE_PMU" }));
    assert!(matches!(
        parse_wise_pmu(Some("maybe")),
        Err(KnobError::Invalid { knob: "WISE_PMU", .. })
    ));
}
