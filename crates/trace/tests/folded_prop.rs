//! Property suite for the folded-stack exporter (cargo-only: needs
//! proptest, so the standalone `rustc` harness skips this file and
//! runs `selftime_folded.rs` instead).
//!
//! Property: for any balanced span forest, the folded output parses
//! back and its values sum to exactly the total root duration — no
//! nanosecond is ever created or lost by self-time attribution.

use proptest::prelude::*;
use wise_trace::export::folded::{folded_stacks, parse_folded};
use wise_trace::span::{Event, Phase};

const NAMES: [&str; 4] = ["a", "b", "c", "d"];

/// Turns a script of (open?, name index, time advance) steps into a
/// balanced single-thread event stream, closing leftovers at the end.
fn build_forest(script: &[(bool, usize, u64)]) -> Vec<Event> {
    let mut events = Vec::new();
    let mut stack: Vec<(&'static str, u64)> = Vec::new();
    let mut ts = 0u64;
    for &(open, name_idx, advance) in script {
        ts += 1 + advance;
        if (open && stack.len() < 8) || stack.is_empty() {
            let name = NAMES[name_idx % NAMES.len()];
            events.push(Event { name, phase: Phase::Begin, ts_ns: ts, tid: 1, value: 0 });
            stack.push((name, ts));
        } else {
            let (name, start) = stack.pop().unwrap();
            events.push(Event { name, phase: Phase::End, ts_ns: ts, tid: 1, value: ts - start });
        }
    }
    while let Some((name, start)) = stack.pop() {
        ts += 1;
        events.push(Event { name, phase: Phase::End, ts_ns: ts, tid: 1, value: ts - start });
    }
    events
}

fn root_total(events: &[Event]) -> u64 {
    let mut depth = 0usize;
    let mut total = 0u64;
    for e in events {
        match e.phase {
            Phase::Begin => depth += 1,
            Phase::End => {
                depth -= 1;
                if depth == 0 {
                    total += e.value;
                }
            }
            _ => {}
        }
    }
    total
}

proptest! {
    #[test]
    fn folded_round_trip_conserves_total_duration(
        script in prop::collection::vec((any::<bool>(), 0..4usize, 0..50u64), 1..80)
    ) {
        let events = build_forest(&script);
        let folded = folded_stacks(&events);
        let rows = parse_folded(&folded).map_err(TestCaseError::fail)?;
        let sum: u64 = rows.iter().map(|(_, v)| v).sum();
        prop_assert_eq!(sum, root_total(&events), "folded output:\n{}", folded);
        // Every emitted path is non-empty and within the nesting bound.
        prop_assert!(rows.iter().all(|(path, _)| !path.is_empty() && path.len() <= 8));
    }
}
