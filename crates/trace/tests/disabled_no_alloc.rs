//! With tracing disabled, spans/counters/samples must record nothing
//! and allocate nothing — the whole workspace leaves instrumentation in
//! hot loops on the strength of this guarantee. Uses a counting global
//! allocator, so it runs as its own process.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn disabled_tracing_neither_records_nor_allocates() {
    wise_trace::set_enabled(false);
    let _ = wise_trace::take_events();

    // Warm the enabled-check path once before counting.
    {
        let _s = wise_trace::span("warmup");
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..10_000u64 {
        let _outer = wise_trace::span("bench.outer");
        let _pmu = wise_trace::span_pmu("bench.pmu");
        let _inner = wise_trace::span("bench.inner");
        wise_trace::counter("bench.counter", i);
        wise_trace::observe_ns("bench.sample", i);
        wise_trace::observe("bench.value", i);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(after - before, 0, "disabled tracing must not allocate");

    assert!(wise_trace::take_events().is_empty(), "disabled tracing must not record events");
}
