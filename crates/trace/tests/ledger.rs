//! Ledger integration tests: JSON round-trip through the in-crate
//! parser, `BENCH_<seq>.json` discovery on a real directory, and the
//! injected-regression gate failure the CI workflow relies on.
//!
//! Zero-dependency on purpose (no serde_json), so the suite runs both
//! under cargo and under the standalone `rustc` harness this offline
//! container verifies with.

use std::collections::BTreeMap;
use wise_trace::ledger::{
    gate, load_all, next_seq, write_record, BenchRecord, DriftRecord, Fnv1a, GatePolicy,
    HostFingerprint, ModelMetrics, PmuSection, PmuStageRecord, ResidualSummary, StageRecord,
    Verdict, SCHEMA_VERSION,
};
use wise_trace::span::{Event, Phase};
use wise_trace::telemetry::QuantileSketch;
use wise_trace::Summary;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("wise_ledger_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn full_record(seq: u64) -> BenchRecord {
    let stages: BTreeMap<String, StageRecord> = [
        (
            "kernel.spmv",
            StageRecord {
                count: 30,
                min_ns: 1_200,
                p50_ns: 1_500,
                p95_ns: 2_100,
                p99_ns: 2_400,
                total_ns: 48_000,
            },
        ),
        (
            "pipeline.select",
            StageRecord {
                count: 1,
                min_ns: 900_000,
                p50_ns: 900_000,
                p95_ns: 900_000,
                p99_ns: 900_000,
                total_ns: 900_000,
            },
        ),
    ]
    .into_iter()
    .map(|(n, s)| (n.to_string(), s))
    .collect();
    BenchRecord {
        schema_version: SCHEMA_VERSION,
        seq,
        note: "quick \"suite\"\nline2".into(), // exercises escaping
        corpus_digest: "fnv1a:00ff00ff00ff00ff".into(),
        host: HostFingerprint {
            cpu_cores: 8,
            threads_env: Some("4".into()),
            pool_env: Some("0".into()),
            rustc: Some("rustc 1.95.0 (abc 2026-01-01)".into()),
            simd: Some("avx512f:8".into()),
            simd_env: Some("8".into()),
            mlp: Some("pf8:il2".into()),
            prefetch_env: None,
        },
        stages,
        counters: [("kernel.spmv.nnz".to_string(), 123_456u64)].into_iter().collect(),
        throughput: [("kernel.spmv.nnz_per_s".to_string(), 2.5718e9)].into_iter().collect(),
        model: Some(ModelMetrics {
            accuracy: 0.8125,
            p_ratio: 0.9417,
            mean_regret: 1.0832,
            max_regret: 1.9001,
            n_classes: 7,
            confusion: (0..49).collect(),
            per_matrix_regret: vec![("rmat_13_8".into(), 1.25), ("rgg_13_8".into(), 1.0)],
        }),
        pmu: Some(PmuSection {
            status: "available".into(),
            stages: [(
                "kernel.spmv".to_string(),
                PmuStageRecord {
                    samples: 30,
                    cycles: 3_600_000,
                    instructions: 7_200_000,
                    llc_loads: 12_000,
                    llc_misses: 3_000,
                    branch_misses: 150,
                    bytes_per_nnz: Some(1.5),
                },
            )]
            .into_iter()
            .collect(),
            residual: Some(ResidualSummary {
                count: 29,
                bytes_p50: 0.75,
                bytes_p95: 1.25,
                cycles_p50: 1.0,
                cycles_p95: 1.5,
            }),
        }),
        sketches: [("kernel.spmv".to_string(), {
            let mut sk = QuantileSketch::default();
            for ns in [1_200u64, 1_500, 1_500, 2_100, 48_000] {
                sk.observe(ns);
            }
            sk
        })]
        .into_iter()
        .collect(),
        drift: Some(DriftRecord {
            status: "warning".into(),
            regret_permille: 1_732,
            fallthrough_permille: 250,
            observed: 40,
        }),
    }
}

#[test]
fn bench_record_json_round_trip() {
    let rec = full_record(3);
    let text = rec.to_json();
    let back = BenchRecord::from_json(&text).expect("parses");
    assert_eq!(back, rec);

    // A model-less record round-trips too.
    let mut bare = full_record(4);
    bare.model = None;
    bare.host = HostFingerprint { cpu_cores: 1, ..Default::default() };
    assert_eq!(BenchRecord::from_json(&bare.to_json()).unwrap(), bare);

    // Garbage and truncated documents are rejected, not panicked on.
    assert!(BenchRecord::from_json("{}").is_err());
    assert!(BenchRecord::from_json(&text[..text.len() / 2]).is_err());
}

#[test]
fn sequence_discovery_and_io() {
    let dir = temp_dir("seq");
    assert_eq!(next_seq(&dir).unwrap(), 1);

    let r1 = full_record(1);
    let p1 = write_record(&dir, &r1).unwrap();
    assert_eq!(p1.file_name().unwrap(), "BENCH_1.json");
    assert_eq!(next_seq(&dir).unwrap(), 2);

    // Gaps are fine; the next seq comes after the max.
    let r7 = full_record(7);
    write_record(&dir, &r7).unwrap();
    assert_eq!(next_seq(&dir).unwrap(), 8);

    // Ledger entries are immutable.
    assert!(write_record(&dir, &r1).is_err());

    // Decoys and a corrupt entry: skipped, warned about, not fatal.
    std::fs::write(dir.join("BENCH_x.json"), "{}").unwrap();
    std::fs::write(dir.join("notes.txt"), "hi").unwrap();
    std::fs::write(dir.join("BENCH_5.json"), "{\"broken\":").unwrap();
    let mut warnings = Vec::new();
    let all = load_all(&dir, &mut warnings).unwrap();
    assert_eq!(all.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![1, 7]);
    assert_eq!(all[0], r1);
    assert_eq!(warnings.len(), 1, "{warnings:?}");
    assert!(warnings[0].contains("BENCH_5.json"));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn injected_inflated_record_fails_the_gate() {
    // The acceptance-criterion scenario: a prior good record, then a
    // candidate whose tracked stage time is artificially inflated 10x.
    let dir = temp_dir("gate");
    let good = full_record(1);
    write_record(&dir, &good).unwrap();

    let mut inflated = full_record(2);
    for st in inflated.stages.values_mut() {
        st.min_ns *= 10;
        st.p50_ns *= 10;
        st.p95_ns *= 10;
        st.total_ns *= 10;
    }
    write_record(&dir, &inflated).unwrap();

    let mut warnings = Vec::new();
    let all = load_all(&dir, &mut warnings).unwrap();
    assert!(warnings.is_empty());
    let (candidate, prior) = all.split_last().unwrap();

    let policy = GatePolicy {
        tracked: vec!["kernel.spmv".into(), "pipeline.select".into()],
        ..GatePolicy::default()
    };
    let report = gate(prior, candidate, &policy);
    assert!(!report.passed(), "10x inflation must fail:\n{}", report.render());
    assert_eq!(report.failures(), 2);
    assert!(report.render().contains("REGRESSED"));

    // Sanity: the same record re-measured (identical times) passes.
    let rerun = gate(prior, &full_record(3), &policy);
    assert!(rerun.passed(), "{}", rerun.render());
    assert_eq!(rerun.diffs.iter().filter(|d| d.verdict == Verdict::Improved).count(), 2);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn from_summary_lifts_stages_and_derives_throughput() {
    // 3 spmv spans of 1ms each + an nnz counter => 300k nnz / 3ms.
    let mut events = Vec::new();
    for i in 0..3u64 {
        let t0 = i * 2_000_000;
        events.push(Event {
            name: "kernel.spmv",
            phase: Phase::Begin,
            ts_ns: t0,
            tid: 1,
            value: 0,
        });
        events.push(Event {
            name: "kernel.spmv.nnz",
            phase: Phase::Counter,
            ts_ns: t0 + 1,
            tid: 1,
            value: 100_000,
        });
        events.push(Event {
            name: "kernel.spmv",
            phase: Phase::End,
            ts_ns: t0 + 1_000_000,
            tid: 1,
            value: 1_000_000,
        });
    }
    let summary = Summary::from_events(&events);
    let mut digest = Fnv1a::new();
    digest.update(b"test corpus");
    let host = HostFingerprint::detect();
    let rec = BenchRecord::from_summary(1, "quick", &digest.digest(), host.clone(), &summary);

    assert_eq!(rec.schema_version, SCHEMA_VERSION);
    assert_eq!(rec.host, host);
    let spmv = &rec.stages["kernel.spmv"];
    assert_eq!(spmv.count, 3);
    assert_eq!(spmv.total_ns, 3_000_000);
    assert_eq!(rec.counters["kernel.spmv.nnz"], 300_000);
    let rate = rec.throughput["kernel.spmv.nnz_per_s"];
    assert!((rate - 1e8).abs() < 1.0, "rate = {rate}");
    // No rows counter recorded -> no rows/s entry invented.
    assert!(!rec.throughput.contains_key("kernel.spmv.rows_per_s"));

    // And the derived record round-trips like any other.
    assert_eq!(BenchRecord::from_json(&rec.to_json()).unwrap(), rec);
}
