//! Span nesting across worker threads must reconstruct into a
//! well-formed parent/child forest: every thread's events balance, and
//! positional nesting survives the merge. Runs as its own process
//! because it owns the global enable flag.

use wise_trace::{build_forest, span, take_events, Phase};

#[test]
fn threaded_spans_form_a_well_formed_forest() {
    wise_trace::set_enabled(true);
    let _ = take_events(); // start from a clean slate

    {
        let _root = span("test.root");
        // The same fan-out shape the feature engine uses: a parent span
        // on the calling thread, one worker span per scoped thread
        // (rayon-style data-parallel workers).
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let _w = span("test.worker");
                    let _inner = span("test.worker.inner");
                    std::hint::black_box(0);
                });
            }
        });
        let _merge = span("test.merge");
    }

    let events = take_events();
    wise_trace::set_enabled(false);

    // Every Begin has a matching End.
    let begins = events.iter().filter(|e| e.phase == Phase::Begin).count();
    let ends = events.iter().filter(|e| e.phase == Phase::End).count();
    assert_eq!(begins, ends);
    assert_eq!(begins, 1 + 4 * 2 + 1);

    // build_forest panics on malformed streams; on success, check shape.
    let forest = build_forest(&events);
    // Roots: test.root on the main thread plus one test.worker per
    // scoped thread (worker threads have no cross-thread parent link;
    // each thread's stack is independent).
    let roots: Vec<&str> = forest.iter().map(|n| n.name).collect();
    assert_eq!(roots.iter().filter(|n| **n == "test.root").count(), 1);
    assert_eq!(roots.iter().filter(|n| **n == "test.worker").count(), 4);
    for worker in forest.iter().filter(|n| n.name == "test.worker") {
        assert_eq!(worker.children.len(), 1);
        assert_eq!(worker.children[0].name, "test.worker.inner");
        assert!(worker.children[0].duration_ns <= worker.duration_ns);
        assert!(worker.children[0].start_ns >= worker.start_ns);
    }
    let root = forest.iter().find(|n| n.name == "test.root").unwrap();
    assert_eq!(root.children.len(), 1, "merge span is the root's only same-thread child");
    assert_eq!(root.children[0].name, "test.merge");

    // Worker tids are distinct from the root's tid and from each other.
    let mut tids: Vec<u64> =
        forest.iter().filter(|n| n.name == "test.worker").map(|n| n.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    assert_eq!(tids.len(), 4, "each scoped thread records under its own tid");
    assert!(tids.iter().all(|&t| t != root.tid));
}
