//! Self-time attribution and the folded-stack exporter on synthetic
//! streams: nested spans across threads, panic-truncated (unbalanced)
//! streams, and an LCG-driven sweep of random balanced forests whose
//! folded output must parse back to exactly the total root duration.
//!
//! Zero-dependency on purpose (no proptest here — see
//! `folded_prop.rs` for the cargo-only property suite), so this file
//! also runs under the standalone `rustc` harness the offline
//! container verifies with.

use wise_trace::export::folded::{folded_stacks, parse_folded};
use wise_trace::export::{balanced_events, run_report};
use wise_trace::span::{Event, Phase};
use wise_trace::Summary;

fn begin(name: &'static str, ts: u64, tid: u64) -> Event {
    Event { name, phase: Phase::Begin, ts_ns: ts, tid, value: 0 }
}

fn end(name: &'static str, ts: u64, tid: u64, start: u64) -> Event {
    Event { name, phase: Phase::End, ts_ns: ts, tid, value: ts - start }
}

#[test]
fn self_time_splits_across_threads_independently() {
    // tid 1: outer [0,100] with children [10,40] and [50,70];
    // tid 2: an unrelated flat span [0,30] under the same names.
    let events = vec![
        begin("outer", 0, 1),
        begin("inner", 10, 1),
        end("inner", 40, 1, 10),
        begin("inner", 50, 1),
        end("inner", 70, 1, 50),
        end("outer", 100, 1, 0),
        begin("inner", 0, 2),
        end("inner", 30, 2, 0),
    ];
    let s = Summary::from_events(&events);
    assert_eq!(s.stages["outer"].total_ns, 100);
    assert_eq!(s.stages["outer"].self_total_ns, 50);
    assert_eq!(s.stages["inner"].total_ns, 80);
    assert_eq!(s.stages["inner"].self_total_ns, 80);
    assert_eq!(s.stages["inner"].parent.as_deref(), Some("outer"));

    // Folded output separates the two call paths and conserves time.
    let folded = folded_stacks(&events);
    let mut rows = parse_folded(&folded).unwrap();
    rows.sort();
    assert_eq!(
        rows,
        vec![
            (vec!["inner".to_string()], 30),
            (vec!["outer".to_string()], 50),
            (vec!["outer".to_string(), "inner".to_string()], 50),
        ]
    );

    // The nested run report indents the child under its parent.
    let report = run_report(&s);
    assert!(report.contains("\n  inner"), "child not indented:\n{report}");
}

#[test]
fn truncated_streams_degrade_without_panicking() {
    // A panic between Begin and End leaves the stream unbalanced:
    // outer never closes, inner does.
    let truncated = vec![begin("outer", 0, 1), begin("inner", 10, 1), end("inner", 40, 1, 10)];
    let s = Summary::from_events(&truncated);
    assert!(!s.stages.contains_key("outer"), "unclosed spans record no duration");
    assert_eq!(s.stages["inner"].total_ns, 30);
    assert_eq!(s.stages["inner"].self_total_ns, 30);

    // A stray End with no Begin attributes its full duration as root
    // self-time instead of panicking.
    let stray = vec![end("orphan", 90, 3, 50)];
    let s = Summary::from_events(&stray);
    assert_eq!(s.stages["orphan"].self_total_ns, 40);

    // The exporter's repair pass closes the dangling span, after which
    // folded output conserves the repaired root total.
    let repaired = balanced_events(&truncated);
    assert_eq!(repaired.iter().filter(|e| e.phase == Phase::End).count(), 2);
    let root_total: u64 = repaired
        .iter()
        .filter(|e| e.phase == Phase::End && e.name == "outer")
        .map(|e| e.value)
        .sum();
    let rows = parse_folded(&folded_stacks(&repaired)).unwrap();
    assert_eq!(rows.iter().map(|(_, v)| v).sum::<u64>(), root_total);
}

#[test]
fn folded_output_conserves_root_time_on_random_forests() {
    // Deterministic LCG sweep: 64 random balanced forests, each checked
    // for exact time conservation through export -> parse.
    let mut state = 0x243F_6A88_85A3_08D3u64;
    let mut rng = move |bound: u64| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 33) % bound
    };
    const NAMES: [&str; 5] = ["a", "b", "c", "d", "e"];
    for case in 0..64 {
        let mut events: Vec<Event> = Vec::new();
        let mut stack: Vec<(&'static str, u64)> = Vec::new();
        let mut ts = 0u64;
        for _ in 0..10 + rng(40) {
            ts += 1 + rng(100);
            if stack.len() < 6 && (stack.is_empty() || rng(2) == 0) {
                let name = NAMES[rng(5) as usize];
                events.push(begin(name, ts, 7));
                stack.push((name, ts));
            } else {
                let (name, start) = stack.pop().unwrap();
                events.push(end(name, ts, 7, start));
            }
        }
        while let Some((name, start)) = stack.pop() {
            ts += 1 + rng(100);
            events.push(end(name, ts, 7, start));
        }

        let mut depth = 0usize;
        let mut root_total = 0u64;
        for e in &events {
            match e.phase {
                Phase::Begin => depth += 1,
                Phase::End => {
                    depth -= 1;
                    if depth == 0 {
                        root_total += e.value;
                    }
                }
                _ => {}
            }
        }

        let folded = folded_stacks(&events);
        let rows = parse_folded(&folded).unwrap_or_else(|e| panic!("case {case}: {e}"));
        let sum: u64 = rows.iter().map(|(_, v)| v).sum();
        assert_eq!(sum, root_total, "case {case} leaks time:\n{folded}");
        assert!(rows.iter().all(|(path, _)| !path.is_empty() && path.len() <= 6));
    }
}
