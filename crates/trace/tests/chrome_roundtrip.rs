//! The Chrome trace-event export must be real JSON: round-trip it
//! through `serde_json` (an independent parser) and re-check event
//! balance on the parsed form. Runs as its own process because it owns
//! the global enable flag.

use wise_trace::{chrome_trace_json, span, take_events};

fn recorded_events() -> Vec<wise_trace::Event> {
    wise_trace::set_enabled(true);
    let _ = take_events();
    {
        let _a = span("rt.outer");
        wise_trace::counter("rt.nnz", 12345);
        {
            let _b = span("rt.inner \"quoted\\name\"");
            wise_trace::observe_ns("rt.sample", 777);
        }
    }
    let events = take_events();
    wise_trace::set_enabled(false);
    events
}

#[test]
fn chrome_export_roundtrips_through_serde_json() {
    let events = recorded_events();
    let text = chrome_trace_json(&events);

    let doc: serde_json::Value = serde_json::from_str(&text).expect("serde_json parses export");
    let trace_events = doc["traceEvents"].as_array().expect("traceEvents array");
    assert_eq!(trace_events.len(), events.len());

    // Balance check on the serde-parsed form: per-tid stacks of B/E.
    let mut stacks: std::collections::HashMap<i64, Vec<String>> = Default::default();
    let mut spans = 0;
    for e in trace_events {
        let tid = e["tid"].as_i64().expect("numeric tid");
        let name = e["name"].as_str().expect("string name").to_string();
        assert!(e["ts"].as_f64().expect("numeric ts") >= 0.0);
        match e["ph"].as_str().expect("string ph") {
            "B" => stacks.entry(tid).or_default().push(name),
            "E" => {
                assert_eq!(stacks.get_mut(&tid).and_then(Vec::pop), Some(name));
                spans += 1;
            }
            "C" => assert!(e["args"].is_object()),
            "i" => assert!(e["args"]["ns"].is_u64()),
            other => panic!("unexpected phase {other}"),
        }
    }
    assert!(stacks.values().all(Vec::is_empty), "unbalanced spans: {stacks:?}");
    assert_eq!(spans, 2);

    // Escaped name survives the round trip verbatim.
    assert!(trace_events.iter().any(|e| e["name"].as_str() == Some("rt.inner \"quoted\\name\"")));

    // Our own validator agrees with serde_json.
    assert_eq!(wise_trace::export::validate_chrome_trace(&text), Ok(2));
}
