//! Cross-crate parity suite for the fused feature-extraction engine:
//! [`FeatureVector::extract`] (fused single-pass, parallel) must equal
//! the kept naive reference extractor
//! [`FeatureVector::extract_reference`] feature-by-feature — *exactly*,
//! not approximately: both paths compute the same integer counts and
//! assemble them with the same floating-point expressions, so any
//! difference is a bug, not rounding.
//!
//! Coverage: every generator family (RMAT skew/locality recipes, RGG,
//! banded), degenerate shapes (empty, all-zero, single row/column,
//! wide, tall), thread counts {1, 2, 7} (exactness of the aligned-chunk
//! parallel merge), and tile budgets k_max ∈ {1, 16, 2048}.

use proptest::prelude::*;
use wise_features::{FeatureConfig, FeatureScratch, FeatureVector};
use wise_gen::{suite, RggParams, RmatParams};
use wise_matrix::coo::DupPolicy;
use wise_matrix::{Coo, Csr};

const THREADS: [usize; 3] = [1, 2, 7];
const K_MAX: [usize; 3] = [1, 16, 2048];

/// Exact feature-by-feature comparison across every (k_max, threads)
/// combination, reusing one scratch to also exercise workspace reuse.
fn check_parity(m: &Csr, tag: &str) {
    let mut scratch = FeatureScratch::new();
    for k_max in K_MAX {
        let want = FeatureVector::extract_reference(m, &FeatureConfig { k_max, threads: 1 });
        for threads in THREADS {
            let cfg = FeatureConfig { k_max, threads };
            let got = FeatureVector::extract_with(m, &cfg, &mut scratch);
            for (i, (g, w)) in got.values().iter().zip(want.values()).enumerate() {
                assert!(
                    g == w,
                    "{tag} k_max={k_max} threads={threads}: feature {} ({i}): fused {g} != reference {w}",
                    FeatureVector::names()[i]
                );
            }
        }
    }
}

#[test]
fn every_generator_family_matches_reference() {
    check_parity(&RmatParams::HIGH_SKEW.generate(9, 12, 1), "rmat-hs");
    check_parity(&RmatParams::MED_SKEW.generate(9, 8, 2), "rmat-ms");
    check_parity(&RmatParams::LOW_SKEW.generate(8, 6, 3), "rmat-ls");
    check_parity(&RmatParams::HIGH_LOC.generate(9, 8, 4), "rmat-hl");
    check_parity(&RmatParams::LOW_LOC.generate(9, 4, 5), "rmat-ll");
    check_parity(&RggParams { n: 700, avg_degree: 6.0 }.generate(6), "rgg");
    check_parity(&suite::banded(431, 11, 0.5, 7), "banded");
    check_parity(&suite::stencil_2d(23, 29), "stencil2d");
}

#[test]
fn degenerate_shapes_match_reference() {
    check_parity(&Csr::zero(0, 0), "empty-0x0");
    check_parity(&Csr::zero(17, 9), "all-zero");
    check_parity(&Csr::identity(1), "1x1");
    // Single dense row / single column.
    check_parity(
        &Csr::try_new(1, 40, vec![0, 40], (0..40).collect(), vec![1.5; 40]).unwrap(),
        "one-dense-row",
    );
    check_parity(
        &Csr::try_new(40, 1, (0..=40).collect(), vec![0; 40], vec![2.0; 40]).unwrap(),
        "one-col",
    );
    // Wide and tall rectangles with empty stretches: tile geometry is
    // strongly anisotropic and the mirrored column sweep dominates.
    let mut wide = Coo::new(3, 4000);
    for i in 0..900 {
        wide.push(i % 3, (i * 37) % 4000, 1.0).unwrap();
    }
    check_parity(&wide.to_csr(DupPolicy::Sum), "wide-3x4000");
    let mut tall = Coo::new(4000, 3);
    for i in 0..900 {
        tall.push((i * 37) % 4000, i % 3, 1.0).unwrap();
    }
    check_parity(&tall.to_csr(DupPolicy::Sum), "tall-4000x3");
}

#[test]
fn chunk_boundary_shapes_match_reference() {
    // Shapes chosen so row counts sit just around the lcm(tile_h, 64)
    // chunk alignment: exact multiples, one off either side, and a
    // prime. Any straddling bug shows up as an incidence-count drift.
    for n in [64usize, 63, 65, 128, 127, 129, 509] {
        check_parity(&suite::banded(n, 3, 0.9, n as u64), &format!("banded-{n}"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary random sparse matrices: the fused engine agrees with
    /// the reference exactly for every thread count and tile budget.
    #[test]
    fn arbitrary_matrices_match_reference(
        nrows in 1usize..160,
        ncols in 1usize..160,
        entries in proptest::collection::vec((0usize..160, 0usize..160), 0..500),
    ) {
        let mut coo = Coo::new(nrows, ncols);
        for (r, c) in entries {
            if r < nrows && c < ncols {
                coo.push(r, c, 1.0).unwrap();
            }
        }
        let m = coo.to_csr(DupPolicy::Sum);
        let mut scratch = FeatureScratch::new();
        for k_max in K_MAX {
            let want = FeatureVector::extract_reference(&m, &FeatureConfig { k_max, threads: 1 });
            for threads in THREADS {
                let got =
                    FeatureVector::extract_with(&m, &FeatureConfig { k_max, threads }, &mut scratch);
                prop_assert_eq!(got.values(), want.values(), "k_max={} threads={}", k_max, threads);
            }
        }
    }
}
