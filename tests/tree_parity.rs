//! Bit-parity suite for the presorted columnar training engine:
//! `DecisionTree::fit` must produce *identical* trees (same node ids,
//! same thresholds bit for bit) to the exact reference trainer
//! `DecisionTree::fit_reference` — on every shape, hyperparameter and
//! degenerate layout we can throw at it. Serialized JSON comparison
//! covers every field, including float thresholds, exactly.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wise_ml::{Dataset, DecisionTree, Presort, TreeParams};

/// Seeded dataset with a tunable duplicate-value lattice: values are
/// drawn from `modulus` distinct levels, so small moduli force heavy
/// ties and equal-value split boundaries. `constant_cols` leading
/// features are constant (never splittable).
fn dataset(
    seed: u64,
    n: usize,
    f: usize,
    classes: usize,
    modulus: u64,
    constant_cols: usize,
) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|_| {
            (0..f)
                .map(|j| {
                    if j < constant_cols {
                        7.5
                    } else {
                        (rng.gen::<u64>() % modulus) as f64 / modulus as f64
                    }
                })
                .collect()
        })
        .collect();
    let labels: Vec<u32> = (0..n).map(|_| rng.gen::<u64>() as u32 % classes as u32).collect();
    Dataset::new(rows, labels, classes)
}

fn assert_parity(d: &Dataset, params: TreeParams, what: &str) {
    let reference = DecisionTree::fit_reference(d, params);
    let engine = DecisionTree::fit(d, params);
    assert_eq!(
        serde_json::to_string(&reference).unwrap(),
        serde_json::to_string(&engine).unwrap(),
        "engine diverged from reference on {what} (params {params:?})"
    );
}

#[test]
fn parity_across_seeded_sweep() {
    // >= 54 seeded datasets x a hyperparameter grid sweeping depth,
    // pruning strength and leaf-size floors, with tie-heavy and
    // tie-free value distributions.
    let mut n_datasets = 0usize;
    for seed in 0..6u64 {
        for &(n, f, classes) in &[(60usize, 4usize, 3usize), (150, 8, 5), (300, 6, 7)] {
            for &modulus in &[5u64, 23, 1 << 40] {
                let d = dataset(seed * 31 + 1, n, f, classes, modulus, 0);
                n_datasets += 1;
                for &max_depth in &[2usize, 5, 30] {
                    for &ccp_alpha in &[0.0f64, 0.005, 0.1] {
                        let params = TreeParams { max_depth, ccp_alpha, ..Default::default() };
                        assert_parity(&d, params, "seeded sweep");
                    }
                }
                for &min_samples_leaf in &[2usize, 7] {
                    let params =
                        TreeParams { max_depth: 12, min_samples_leaf, ..Default::default() };
                    assert_parity(&d, params, "leaf-floor sweep");
                }
            }
        }
    }
    assert!(n_datasets >= 50, "sweep shrank below spec: {n_datasets} datasets");
}

#[test]
fn parity_with_constant_columns() {
    // Constant features offer no split boundary; both trainers must
    // skip them identically — including the all-constant dataset,
    // which must be a single leaf.
    for seed in 0..4u64 {
        let d = dataset(seed, 80, 6, 4, 13, 3);
        assert_parity(&d, TreeParams::default(), "3 constant columns");
        let all_const = dataset(seed, 50, 4, 3, 13, 4);
        let tree = DecisionTree::fit(&all_const, TreeParams::default());
        assert_eq!(tree.n_nodes(), 1, "unsplittable data must stay a single leaf");
        assert_parity(&all_const, TreeParams::default(), "all-constant columns");
    }
}

#[test]
fn parity_on_subset_views_and_shared_presort() {
    // Fold-style subset views (the cross-validation path) and an
    // explicitly shared presort across label views (the registry path)
    // must match per-view reference fits.
    let d = dataset(9, 120, 5, 4, 11, 1);
    let params = TreeParams::default();
    let idx: Vec<usize> = (0..120).filter(|i| i % 3 != 0).collect();
    let sub = d.subset(&idx);
    assert_parity(&sub, params, "subset view");

    let presort = Presort::for_dataset(&sub);
    let relabeled = {
        let labels: Vec<u32> = (0..sub.len()).map(|i| (i % 4) as u32).collect();
        Dataset::from_matrix_rows(
            std::sync::Arc::clone(sub.matrix()),
            sub.row_indices().to_vec(),
            labels,
            4,
        )
    };
    for view in [&sub, &relabeled] {
        let shared = DecisionTree::fit_with(view, &presort, params);
        let reference = DecisionTree::fit_reference(view, params);
        assert_eq!(
            serde_json::to_string(&shared).unwrap(),
            serde_json::to_string(&reference).unwrap(),
            "shared presort diverged on a label view"
        );
    }
}

#[test]
fn parity_on_bootstrap_resamples() {
    // Repeated rows (the forest path) — duplicate samples mean exact
    // value ties across *positions*, the hardest stability case.
    let d = dataset(17, 90, 4, 3, 7, 0);
    let mut rng = StdRng::seed_from_u64(99);
    for _ in 0..5 {
        let sample: Vec<usize> = (0..90).map(|_| rng.gen_range(0..90)).collect();
        assert_parity(&d.subset(&sample), TreeParams::default(), "bootstrap resample");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random shapes, moduli and hyperparameters: the engine never
    /// diverges from the reference.
    #[test]
    fn parity_holds_on_random_datasets(
        seed in 0u64..10_000,
        n in 5usize..120,
        f in 1usize..7,
        classes in 2usize..6,
        modulus in 2u64..40,
        max_depth in 1usize..12,
        ccp in 0usize..3,
    ) {
        let d = dataset(seed, n, f, classes, modulus, 0);
        let params = TreeParams {
            max_depth,
            ccp_alpha: [0.0, 0.01, 0.08][ccp],
            ..Default::default()
        };
        let reference = DecisionTree::fit_reference(&d, params);
        let engine = DecisionTree::fit(&d, params);
        prop_assert_eq!(
            serde_json::to_string(&reference).unwrap(),
            serde_json::to_string(&engine).unwrap()
        );
    }
}
