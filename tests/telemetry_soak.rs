//! Telemetry soak: a 10k-selection loop with the streaming layer on
//! must run in bounded memory (DESIGN.md §18 acceptance criterion).
//!
//! The streaming sketches store log-γ *buckets*, not samples, so their
//! footprint is a function of the observed value range — it saturates
//! early and must not grow between the 5k mark and the 10k mark beyond
//! the odd new bucket from a fresh latency extreme. The flight
//! recorder's ring is a fixed-capacity deque; 10k requests must leave
//! it at exactly its cap with the aggregate counters intact.

use wise_core::labels::label_corpus;
use wise_core::pipeline::{TrainOptions, Wise};
use wise_features::{FeatureConfig, FeatureVector};
use wise_gen::{Corpus, CorpusScale, RmatParams};
use wise_ml::TreeParams;
use wise_perf::Estimator;
use wise_trace::telemetry;

const SOAK: usize = 10_000;
const CHECKPOINT: usize = SOAK / 2;

#[test]
fn soak_10k_selections_stays_in_bounded_memory() {
    // Sketches feed from closing spans, so the soak runs fully traced;
    // the raw-event ring is itself fixed-capacity (overflow drops
    // events, it never grows), so this adds no unbounded memory.
    wise_trace::set_enabled(true);
    telemetry::set_telemetry_enabled(true);
    telemetry::stream_reset();
    telemetry::flight_reset();

    let opts = TrainOptions {
        // Deterministic label backend: the soak is about memory, not
        // wall clocks.
        estimator: Estimator::model_for_rows(1 << 10),
        feature_config: FeatureConfig::default(),
        tree_params: TreeParams::default(),
    };
    let corpus = Corpus::random(&CorpusScale::tiny(), 7);
    let labels = label_corpus(&corpus, &opts.estimator, &opts.feature_config);
    let wise = Wise::from_labels(&labels, &opts);

    // Extract once, select many: the soak exercises the per-request
    // path (sketch observes + flight records), not feature extraction.
    let m = RmatParams::MED_SKEW.generate(9, 8, 42);
    let fv = FeatureVector::extract(&m, &opts.feature_config);

    let mut footprint_at_checkpoint = 0usize;
    for i in 0..SOAK {
        let choice = wise.select_from_features(fv.clone());
        assert_ne!(choice.request_id, 0, "telemetry-on selection must carry a request id");
        if i + 1 == CHECKPOINT {
            footprint_at_checkpoint = telemetry::stream_footprint_bytes();
        }
    }

    let footprint = telemetry::stream_footprint_bytes();
    assert!(footprint > 0, "sketches must have observed the soak");
    // Saturation: the second 5k selections see the same latency
    // distribution as the first, so at most a handful of new buckets
    // (fresh extremes) may appear. 2x covers a capacity-doubling
    // realloc triggered by such a bucket; unbounded growth would blow
    // far past it.
    assert!(
        footprint <= footprint_at_checkpoint.saturating_mul(2),
        "sketch footprint grew {footprint_at_checkpoint} -> {footprint} bytes \
         between the 5k and 10k marks"
    );
    // Absolute ceiling: every per-stage sketch together stays far below
    // one sample's worth of storage per request.
    assert!(footprint < 1 << 20, "sketch footprint {footprint} bytes exceeds 1 MiB");

    let stats = telemetry::flight_stats();
    assert!(
        stats.requests >= SOAK as u64,
        "each selection is one flight request ({} < {SOAK})",
        stats.requests
    );
    assert_eq!(
        telemetry::flight_ring().len(),
        telemetry::FLIGHT_RING_CAPACITY,
        "10k requests must leave the ring exactly at its cap"
    );
}
