//! Statistical quality of the trained models: cross-validated accuracy
//! well above chance, near-miss structure, and feature relevance —
//! the Section 6.2 claims at test scale.

use wise_core::evaluate::evaluate_cv;
use wise_core::labels::label_corpus;
use wise_features::FeatureConfig;
use wise_gen::{Corpus, CorpusScale};
use wise_ml::TreeParams;
use wise_perf::Estimator;

fn labels() -> wise_core::labels::CorpusLabels {
    let scale = CorpusScale::tiny();
    let corpus = Corpus::full(&scale, 33);
    let est = Estimator::model_for_rows(1 << 10);
    label_corpus(&corpus, &est, &FeatureConfig::default())
}

#[test]
fn cv_accuracy_is_far_above_chance() {
    let l = labels();
    let ev = evaluate_cv(&l, TreeParams::default(), 5, 11);
    let mean_acc: f64 =
        ev.confusions.iter().map(|c| c.accuracy()).sum::<f64>() / ev.confusions.len() as f64;
    // Chance over 7 classes is ~14%; even the tiny corpus should clear
    // 45% easily (the paper reaches 83-92% at full scale).
    assert!(mean_acc > 0.45, "mean CV accuracy {mean_acc:.3}");
}

#[test]
fn misclassifications_cluster_near_the_truth() {
    let l = labels();
    let ev = evaluate_cv(&l, TreeParams::default(), 5, 11);
    // Pool misses across all 29 models (single models may have few).
    let mut near = 0.0;
    let mut total = 0.0;
    for cm in &ev.confusions {
        let misses = cm.total() as f64 * (1.0 - cm.accuracy());
        near += cm.misses_within(1) * misses;
        total += misses;
    }
    if total > 0.0 {
        let frac = near / total;
        assert!(frac > 0.5, "only {frac:.2} of misses within one class (paper: ~0.9)");
    }
}

#[test]
fn deeper_trees_do_not_hurt_end_to_end_speedup() {
    // Table 4's structural claim: D=15 is no worse than D=5.
    let l = labels();
    let shallow = evaluate_cv(&l, TreeParams { max_depth: 3, ..Default::default() }, 5, 11);
    let deep = evaluate_cv(&l, TreeParams { max_depth: 15, ..Default::default() }, 5, 11);
    assert!(
        deep.mean_wise_speedup() >= shallow.mean_wise_speedup() * 0.95,
        "deep {:.3} vs shallow {:.3}",
        deep.mean_wise_speedup(),
        shallow.mean_wise_speedup()
    );
}

#[test]
fn extreme_pruning_degrades_gracefully_not_catastrophically() {
    let l = labels();
    let pruned = evaluate_cv(&l, TreeParams { ccp_alpha: 0.2, ..Default::default() }, 5, 11);
    // Even a forest of stumps must stay >= 1.0x: the selection rule
    // falls back to CSR on ties, never below the baseline family.
    assert!(pruned.mean_wise_speedup() > 0.8, "stump speedup {:.3}", pruned.mean_wise_speedup());
}
