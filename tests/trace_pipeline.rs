//! End-to-end observability test: a traced tiny pipeline run must cover
//! every mandatory stage (the same set CI's `check_trace` enforces on
//! the quickstart trace), and the Chrome export must be balanced.
//!
//! Lives in its own integration-test binary because tracing is
//! process-global state.

use wise_core::pipeline::{TrainOptions, Wise};
use wise_gen::{Corpus, CorpusScale};
use wise_kernels::srvpack::SpmvWorkspace;

#[test]
fn traced_pipeline_covers_mandatory_stages() {
    wise_trace::set_enabled(true);
    let _ = wise_trace::take_events(); // discard anything from other tests in this binary

    // Pin the cascade on so the stage-1 span below is deterministic
    // even if WISE_CASCADE=0 leaks in from the environment.
    wise_core::cascade::set_mode(wise_core::CascadeMode::Auto);

    let scale = CorpusScale::tiny();
    let corpus = Corpus::random(&scale, 7);
    let wise = Wise::train(&corpus, &TrainOptions::for_scale(&scale));
    let m = wise_gen::RmatParams::HIGH_SKEW.generate(9, 16, 77);
    let choice = wise.select(&m);
    let prepared = wise.prepare(&m, &choice);
    let mut ws = SpmvWorkspace::default();
    let x = vec![1.0; m.ncols()];
    let mut y = vec![0.0; m.nrows()];
    prepared.spmv(&x, &mut y, 1, &mut ws);

    let events = wise_trace::take_events();
    wise_trace::set_enabled(false);
    let summary = wise_trace::Summary::from_events(&events);

    // The stage set CI requires on the quickstart trace. The trained
    // instance carries a cascade gate, so the stage-1 probe span is
    // mandatory whether or not the gate accepted.
    for stage in [
        "features.extract",
        "label.corpus",
        "train.registry",
        "pipeline.select",
        "select.cascade.stage1",
        "kernel.convert",
        "kernel.spmv",
    ] {
        let stats = summary.stages.get(stage).unwrap_or_else(|| {
            panic!(
                "stage {stage} missing from trace; have {:?}",
                summary.stages.keys().collect::<Vec<_>>()
            )
        });
        assert!(stats.count > 0, "stage {stage} recorded no spans");
        assert!(stats.max_ns >= stats.p99_ns && stats.p99_ns >= stats.p95_ns);
        assert!(stats.p95_ns >= stats.p50_ns);
        assert!(stats.self_total_ns <= stats.total_ns);
    }

    // The explicit PMU marker is always present, whatever the host
    // resolved to (available, unavailable, or off via WISE_PMU=0).
    assert!(!summary.pmu_status.is_empty(), "summary must carry a pmu status marker");

    // Counters made it through, and with plausible magnitudes.
    assert_eq!(summary.counters["label.corpus.matrices"], corpus.len() as u64);
    // Stored nonzeros: nnz for CSR-family picks, padded nnz otherwise.
    assert!(summary.counters["kernel.spmv.nnz"] >= m.nnz() as u64);
    assert!(summary.counters["kernel.convert.nnz"] >= m.nnz() as u64);

    // The Chrome export of a real multi-threaded run stays balanced.
    let json = wise_trace::chrome_trace_json(&events);
    let n_spans = wise_trace::export::validate_chrome_trace(&json).expect("chrome trace validates");
    assert!(n_spans > 0);

    // And the span forest is well-formed (every Begin has its End).
    let forest = wise_trace::build_forest(&events);
    assert!(!forest.is_empty());
}
