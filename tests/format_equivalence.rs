//! Cross-crate property tests: every one of the 29 catalog
//! configurations computes exactly the same `y = A x` as the reference
//! CSR loop, on matrices from every generator family and on adversarial
//! random matrices.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wise_gen::{suite, RggParams, RmatParams};
use wise_kernels::method::MethodConfig;
use wise_kernels::srvpack::SpmvWorkspace;
use wise_matrix::coo::DupPolicy;
use wise_matrix::{Coo, Csr};

fn check_all_configs(m: &Csr, tag: &str) {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    let x: Vec<f64> = (0..m.ncols()).map(|_| rng.gen_range(-2.0..2.0)).collect();
    let mut want = vec![0.0; m.nrows()];
    m.spmv_reference(&x, &mut want);
    let mut ws = SpmvWorkspace::default();
    for cfg in MethodConfig::catalog() {
        let prep = cfg.prepare(m);
        let mut got = vec![f64::NAN; m.nrows()];
        prep.spmv(&x, &mut got, 3, &mut ws);
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert!(
                (g - w).abs() <= 1e-9 * (1.0 + w.abs()),
                "{tag}: {} row {i}: {g} vs {w}",
                cfg.label()
            );
        }
    }
}

#[test]
fn every_generator_family_is_computed_identically() {
    check_all_configs(&RmatParams::HIGH_SKEW.generate(9, 12, 1), "rmat-hs");
    check_all_configs(&RmatParams::LOW_LOC.generate(9, 4, 2), "rmat-ll");
    check_all_configs(&RmatParams::HIGH_LOC.generate(9, 8, 3), "rmat-hl");
    check_all_configs(&RggParams { n: 700, avg_degree: 6.0 }.generate(4), "rgg");
    check_all_configs(&suite::stencil_2d(23, 29), "stencil2d");
    check_all_configs(&suite::stencil_3d(8, 9, 7), "stencil3d");
    check_all_configs(&suite::banded(431, 11, 0.5, 5), "banded");
    check_all_configs(&suite::road_like(900, 6), "road");
}

#[test]
fn degenerate_shapes_are_computed_identically() {
    // Single row, single column, empty, all-empty-rows, one dense row.
    check_all_configs(&Csr::identity(1), "1x1");
    check_all_configs(&Csr::zero(17, 9), "zero");
    check_all_configs(
        &Csr::try_new(1, 40, vec![0, 40], (0..40).collect(), vec![1.5; 40]).unwrap(),
        "one-dense-row",
    );
    check_all_configs(
        &Csr::try_new(40, 1, (0..=40).collect(), vec![0; 40], vec![2.0; 40]).unwrap(),
        "one-col",
    );
    // Wide rectangular with empty tail rows.
    let mut coo = Coo::new(12, 300);
    coo.push(0, 299, 3.0).unwrap();
    coo.push(3, 0, -1.0).unwrap();
    coo.push(3, 150, 4.0).unwrap();
    check_all_configs(&coo.to_csr(DupPolicy::Sum), "sparse-rect");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary random sparse matrices: all 29 formats agree with the
    /// reference.
    #[test]
    fn arbitrary_matrices_agree(
        nrows in 1usize..120,
        ncols in 1usize..120,
        entries in proptest::collection::vec((0usize..120, 0usize..120, -5.0f64..5.0), 0..400),
        seed in 0u64..u64::MAX,
    ) {
        let mut coo = Coo::new(nrows, ncols);
        for (r, c, v) in entries {
            if r < nrows && c < ncols {
                coo.push(r, c, v).unwrap();
            }
        }
        let m = coo.to_csr(DupPolicy::Sum);
        let mut rng = StdRng::seed_from_u64(seed);
        let x: Vec<f64> = (0..m.ncols()).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut want = vec![0.0; m.nrows()];
        m.spmv_reference(&x, &mut want);
        let mut ws = SpmvWorkspace::default();
        for cfg in MethodConfig::catalog() {
            let prep = cfg.prepare(&m);
            let mut got = vec![f64::NAN; m.nrows()];
            prep.spmv(&x, &mut got, 2, &mut ws);
            for (g, w) in got.iter().zip(&want) {
                prop_assert!((g - w).abs() <= 1e-9 * (1.0 + w.abs()),
                    "{}: {} vs {}", cfg.label(), g, w);
            }
        }
    }

    /// Padding never loses or duplicates nonzeros: packed real nnz
    /// equals the matrix's, and padding ratio >= 1.
    #[test]
    fn packing_preserves_nnz(
        scale in 6u32..9,
        degree in 1u32..12,
        seed in 0u64..1000,
    ) {
        let m = RmatParams::MED_SKEW.generate(scale, degree, seed);
        for cfg in MethodConfig::catalog() {
            if cfg.method == wise_kernels::Method::Csr { continue; }
            if let wise_kernels::method::Prepared::Pack(p, _) = cfg.prepare(&m) {
                prop_assert_eq!(p.nnz_real(), m.nnz(), "{}", cfg.label());
                prop_assert!(p.nnz_padded() >= p.nnz_real());
            }
        }
    }
}
