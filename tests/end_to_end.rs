//! End-to-end integration: corpus generation → labeling → training →
//! selection → execution, across every crate of the workspace.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wise_core::labels::label_corpus;
use wise_core::pipeline::{TrainOptions, Wise};
use wise_features::FeatureConfig;
use wise_gen::{Corpus, CorpusScale, RmatParams};
use wise_kernels::srvpack::SpmvWorkspace;
use wise_perf::Estimator;

fn options(scale: &CorpusScale) -> TrainOptions {
    // Pin the backend to the model so the test is deterministic even if
    // WISE_MEASURED is set in the environment.
    let max_rows = 1usize << scale.row_scales.iter().copied().max().unwrap();
    TrainOptions {
        estimator: Estimator::model_for_rows(max_rows),
        feature_config: FeatureConfig::default(),
        tree_params: Default::default(),
    }
}

#[test]
fn trained_wise_selections_are_executable_and_correct() {
    let scale = CorpusScale::tiny();
    let corpus = Corpus::full(&scale, 5);
    let wise = Wise::train(&corpus, &options(&scale));

    let mut rng = StdRng::seed_from_u64(99);
    // Held-out matrices from several recipes (seeds unseen in training).
    for (i, m) in [
        RmatParams::HIGH_SKEW.generate(10, 16, 1001),
        RmatParams::LOW_LOC.generate(10, 8, 1002),
        RmatParams::HIGH_LOC.generate(9, 8, 1003),
        wise_gen::suite::stencil_2d(31, 33),
    ]
    .iter()
    .enumerate()
    {
        let choice = wise.select(m);
        let x: Vec<f64> = (0..m.ncols()).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut got = vec![0.0; m.nrows()];
        wise.run_spmv(m, &choice, &x, &mut got, 2);
        let mut want = vec![0.0; m.nrows()];
        m.spmv_reference(&x, &mut want);
        for (g, w) in got.iter().zip(&want) {
            assert!(
                (g - w).abs() <= 1e-9 * (1.0 + w.abs()),
                "matrix {i}, choice {}",
                choice.config.label()
            );
        }
    }
}

#[test]
fn wise_beats_mkl_baseline_on_average_under_the_model() {
    // The paper's headline claim, at tiny scale: selecting per matrix
    // beats the fixed MKL-like baseline on average (model backend).
    let scale = CorpusScale::tiny();
    let corpus = Corpus::full(&scale, 6);
    let opts = options(&scale);
    let labels = label_corpus(&corpus, &opts.estimator, &opts.feature_config);
    let ev = wise_core::evaluate::evaluate_cv(&labels, opts.tree_params, 5, 7);
    let speedup = ev.mean_wise_speedup();
    assert!(speedup > 1.0, "WISE should beat the fixed baseline on average, got {speedup:.3}x");
    // And stay within a sane distance of its oracle.
    assert!(ev.mean_oracle_speedup() / speedup < 2.0);
}

#[test]
fn selection_is_deterministic_across_training_runs() {
    let scale = CorpusScale::tiny();
    let corpus = Corpus::full(&scale, 5);
    let a = Wise::train(&corpus, &options(&scale));
    let b = Wise::train(&corpus, &options(&scale));
    for m in [RmatParams::MED_SKEW.generate(9, 8, 2001), RmatParams::LOW_SKEW.generate(9, 4, 2002)]
    {
        assert_eq!(a.select(&m).config.label(), b.select(&m).config.label());
    }
}

#[test]
fn prepared_kernel_supports_iterative_reuse_with_changing_x() {
    let scale = CorpusScale::tiny();
    let corpus = Corpus::full(&scale, 5);
    let wise = Wise::train(&corpus, &options(&scale));
    let m = RmatParams::HIGH_SKEW.generate(9, 16, 3001);
    let choice = wise.select(&m);
    let prep = wise.prepare(&m, &choice);
    let mut ws = SpmvWorkspace::default();
    let mut rng = StdRng::seed_from_u64(17);
    for _ in 0..5 {
        let x: Vec<f64> = (0..m.ncols()).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut got = vec![0.0; m.nrows()];
        prep.spmv(&x, &mut got, 3, &mut ws);
        let mut want = vec![0.0; m.nrows()];
        m.spmv_reference(&x, &mut want);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() <= 1e-9 * (1.0 + w.abs()));
        }
    }
}

#[test]
fn extended_catalog_trains_and_selects() {
    // The paper's extensibility claim (Section 7): adding configurations
    // is purely additive — label over a bigger catalog, train, select.
    use wise_core::labels::label_corpus_with;
    use wise_core::ModelRegistry;
    use wise_kernels::method::MethodConfig;

    let scale = CorpusScale::tiny();
    let corpus = Corpus::random(&scale, 8);
    let opts = options(&scale);
    let mut catalog = MethodConfig::catalog();
    catalog.push(MethodConfig::lav(8, 0.95));
    let n = catalog.len();
    let labels = label_corpus_with(&corpus, &opts.estimator, &opts.feature_config, catalog);
    assert_eq!(labels.catalog.len(), n);
    let registry = ModelRegistry::train(&labels, opts.tree_params);
    let wise = Wise::from_registry(registry, opts.feature_config);
    let m = RmatParams::HIGH_SKEW.generate_shuffled(9, 16, 4242);
    let choice = wise.select(&m);
    assert_eq!(choice.predictions.len(), n);
    // The chosen config is executable and correct.
    let x = vec![1.0; m.ncols()];
    let mut got = vec![0.0; m.nrows()];
    wise.run_spmv(&m, &choice, &x, &mut got, 1);
    let mut want = vec![0.0; m.nrows()];
    m.spmv_reference(&x, &mut want);
    for (g, w) in got.iter().zip(&want) {
        assert!((g - w).abs() < 1e-9 * (1.0 + w.abs()));
    }
}

#[test]
fn catalog_without_csr_is_rejected() {
    use wise_core::labels::label_corpus_with;
    use wise_kernels::method::MethodConfig;
    let scale = CorpusScale::tiny();
    let corpus = Corpus::random(&scale, 8);
    let opts = options(&scale);
    let catalog = vec![MethodConfig::sellpack(8, wise_kernels::Schedule::Dyn)];
    let result = std::panic::catch_unwind(|| {
        label_corpus_with(&corpus, &opts.estimator, &opts.feature_config, catalog)
    });
    assert!(result.is_err(), "labeling without a CSR baseline must panic");
}
