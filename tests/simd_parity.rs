//! SIMD-vs-scalar parity: the runtime-dispatched vector kernels must
//! agree with the bit-exact scalar oracles within the documented ulp
//! contract (`wise_kernels::simd::SPMV_MAX_ULPS` /
//! `SPMV_ABS_FLOOR`), across the full 29-configuration catalog, every
//! scheduling policy, and several thread counts — and forcing the
//! scalar path (`WISE_SIMD=0`, here via `simd::set_active`) must
//! restore bit-exact agreement with the reference loop.
//!
//! Tests that touch the process-global active-ISA state serialize on a
//! shared mutex and restore the previous value on drop, so the suite is
//! order- and parallelism-independent.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::{Mutex, MutexGuard};
use wise_gen::{suite, RmatParams};
use wise_kernels::method::MethodConfig;
use wise_kernels::simd::{self, SPMV_ABS_FLOOR, SPMV_MAX_ULPS};
use wise_kernels::srvpack::SpmvWorkspace;
use wise_kernels::{Schedule, SimdIsa};
use wise_matrix::coo::DupPolicy;
use wise_matrix::{Coo, Csr};

static ACTIVE_ISA_LOCK: Mutex<()> = Mutex::new(());

fn lock_active_isa() -> MutexGuard<'static, ()> {
    // A poisoned lock only means another parity test panicked; the
    // guard below restored the ISA state, so continuing is safe.
    ACTIVE_ISA_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Restores the saved active ISA when dropped (even on panic).
struct RestoreIsa(SimdIsa);

impl Drop for RestoreIsa {
    fn drop(&mut self) {
        simd::set_active(self.0);
    }
}

/// Restores the saved `WISE_PREFETCH` override when dropped.
struct RestorePrefetch(Option<usize>);

impl Drop for RestorePrefetch {
    fn drop(&mut self) {
        simd::set_prefetch(self.0);
    }
}

/// The matrix zoo: ragged skew, short rows (pure scalar tails), empty
/// rows, all-zero, one dense row, and a regular stencil.
fn zoo() -> Vec<(&'static str, Csr)> {
    let mut sparse_rect = Coo::new(12, 300);
    sparse_rect.push(0, 299, 3.0).unwrap();
    sparse_rect.push(3, 0, -1.0).unwrap();
    sparse_rect.push(3, 150, 4.0).unwrap();
    vec![
        ("rmat-ragged", RmatParams::HIGH_SKEW.generate(9, 8, 1)),
        ("rmat-short-rows", RmatParams::LOW_LOC.generate(8, 2, 2)),
        ("empty-rows-rect", sparse_rect.to_csr(DupPolicy::Sum)),
        ("zero", Csr::zero(17, 9)),
        (
            "one-dense-row",
            Csr::try_new(1, 40, vec![0, 40], (0..40).collect(), vec![1.5; 40]).unwrap(),
        ),
        ("stencil2d", suite::stencil_2d(23, 29)),
    ]
}

fn dense_x(ncols: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..ncols).map(|_| rng.gen_range(-2.0..2.0)).collect()
}

fn run(cfg: &MethodConfig, m: &Csr, x: &[f64], nthreads: usize) -> Vec<f64> {
    let prep = cfg.prepare(m);
    let mut ws = SpmvWorkspace::default();
    let mut y = vec![f64::NAN; m.nrows()];
    prep.spmv(x, &mut y, nthreads, &mut ws);
    y
}

#[test]
fn catalog_auto_simd_matches_scalar_oracle_within_ulp_bound() {
    let _g = lock_active_isa();
    for (tag, m) in zoo() {
        let x = dense_x(m.ncols(), 0xC0FFEE);
        for cfg in MethodConfig::catalog() {
            for nthreads in [1usize, 2, 7] {
                let want = run(&cfg.with_simd(1), &m, &x, nthreads);
                let got = run(&cfg, &m, &x, nthreads);
                let ctx = format!("{tag}: {} at {nthreads} threads", cfg.label());
                simd::assert_ulp_close(&got, &want, SPMV_MAX_ULPS, SPMV_ABS_FLOOR, &ctx);
            }
        }
    }
}

#[test]
fn explicit_widths_match_scalar_oracle_within_ulp_bound() {
    let _g = lock_active_isa();
    let m = RmatParams::HIGH_SKEW.generate(9, 8, 1);
    let x = dense_x(m.ncols(), 0xBEEF);
    for cfg in MethodConfig::catalog() {
        let want = run(&cfg.with_simd(1), &m, &x, 2);
        for v in [2usize, 4, 8] {
            let got = run(&cfg.with_simd(v), &m, &x, 2);
            let ctx = format!("{} at v={v}", cfg.label());
            simd::assert_ulp_close(&got, &want, SPMV_MAX_ULPS, SPMV_ABS_FLOOR, &ctx);
        }
    }
}

#[test]
fn forcing_scalar_isa_restores_bitwise_parity() {
    // The WISE_SIMD=0 contract: with the active ISA pinned to Scalar,
    // the default (v = 0) catalog is bit-for-bit the pre-SIMD repo.
    let _g = lock_active_isa();
    let _restore = RestoreIsa(simd::active());
    simd::set_active(SimdIsa::Scalar);
    for (tag, m) in zoo() {
        let x = dense_x(m.ncols(), 0xF00D);
        for cfg in MethodConfig::catalog() {
            let want = run(&cfg.with_simd(1), &m, &x, 2);
            let got = run(&cfg, &m, &x, 2);
            for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                assert_eq!(g.to_bits(), w.to_bits(), "{tag}: {} row {i}: {g} vs {w}", cfg.label());
            }
        }
    }
}

#[test]
fn pre_simd_labels_still_parse_and_new_ones_round_trip() {
    // Labels written by earlier versions of the repo (no -v suffix)
    // must keep parsing to v = 0 configs with unchanged labels.
    let pre_simd = [
        "CSR-Dyn",
        "SELLPACK-c8-Dyn",
        "Sell-c-s-c4-s4096-StCont",
        "Sell-c-R-c8",
        "LAV-1Seg-c4",
        "LAV-c8-T80",
    ];
    for old in pre_simd {
        let cfg = MethodConfig::parse(old)
            .unwrap_or_else(|| panic!("pre-SIMD label {old} no longer parses"));
        assert_eq!(cfg.v, 0, "{old}");
        assert_eq!(cfg.label(), old);
    }
    // And every catalog entry round-trips at every explicit width.
    for v in [0usize, 1, 2, 4, 8] {
        for cfg in MethodConfig::catalog_with_simd(v) {
            let label = cfg.label();
            assert_eq!(MethodConfig::parse(&label), Some(cfg), "{label}");
        }
    }
    assert_eq!(MethodConfig::parse("CSR-v8-Dyn").map(|c| c.v), Some(8));
}

#[test]
fn mlp_knobs_never_change_results_bitwise() {
    // The MLP contract from DESIGN.md §17: prefetch is a pure hint and
    // interleaving only overlaps *independent* accumulator chains —
    // each row's (or chunk's) own op order is identical to the solo
    // kernel. Every explicit (D, R) setting must therefore be
    // bit-for-bit the auto config, at every thread count.
    let _g = lock_active_isa();
    let picks = [
        MethodConfig::csr(Schedule::Dyn),
        MethodConfig::csr(Schedule::St),
        MethodConfig::sellpack(8, Schedule::Dyn),
        MethodConfig::sell_c_r(8),
        MethodConfig::sell_c_sigma(4, 4096, Schedule::StCont),
        MethodConfig::lav(8, 0.8),
    ];
    for (tag, m) in zoo() {
        let x = dense_x(m.ncols(), 0xD15C0);
        for cfg in picks {
            for nthreads in [1usize, 2, 7] {
                let base = run(&cfg, &m, &x, nthreads);
                for pf in [1usize, 4, simd::MAX_PREFETCH] {
                    for il in [1usize, 2, 5] {
                        let knobbed = cfg.with_prefetch(pf).with_interleave(il);
                        let got = run(&knobbed, &m, &x, nthreads);
                        for (i, (g, w)) in got.iter().zip(&base).enumerate() {
                            assert_eq!(
                                g.to_bits(),
                                w.to_bits(),
                                "{tag}: {} row {i} at {nthreads} threads: {g} vs {w}",
                                knobbed.label()
                            );
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn masked_chunk_heights_stay_within_ulp_contract() {
    // Chunk heights outside {4, 8} resolve to the AVX-512 masked-lane
    // kernel where the host supports it; its FMA rounds once where the
    // scalar oracle rounds twice, so the contract here is ulp
    // closeness, not bit equality.
    let _g = lock_active_isa();
    for (tag, m) in zoo() {
        let x = dense_x(m.ncols(), 0xAB1E);
        for c in [2usize, 3, 5, 6, 7] {
            let cfg = MethodConfig::sell_c_sigma(c, 1024, Schedule::Dyn);
            for nthreads in [1usize, 3] {
                let want = run(&cfg.with_simd(1), &m, &x, nthreads);
                let got = run(&cfg, &m, &x, nthreads);
                let ctx = format!("{tag}: {} at {nthreads} threads (masked height)", cfg.label());
                simd::assert_ulp_close(&got, &want, SPMV_MAX_ULPS, SPMV_ABS_FLOOR, &ctx);
            }
        }
    }
}

#[test]
fn prefetch_off_plus_scalar_isa_is_bitwise_pre_pr() {
    // The `WISE_PREFETCH=0 WISE_SIMD=scalar` contract, exercised via
    // the process-wide setters those variables feed (so the suite
    // needs no subprocess): with both pinned, the default catalog is
    // bit-for-bit the v = 1 scalar reference loop.
    let _g = lock_active_isa();
    let _risa = RestoreIsa(simd::active());
    let _rpf = RestorePrefetch(simd::prefetch_override());
    simd::set_active(SimdIsa::Scalar);
    simd::set_prefetch(Some(0));
    for (tag, m) in zoo() {
        let x = dense_x(m.ncols(), 0x5EED);
        for cfg in MethodConfig::catalog() {
            let want = run(&cfg.with_simd(1), &m, &x, 2);
            let got = run(&cfg, &m, &x, 2);
            for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                assert_eq!(g.to_bits(), w.to_bits(), "{tag}: {} row {i}: {g} vs {w}", cfg.label());
            }
        }
    }
}

#[test]
fn prefetch_override_sweep_never_changes_numerics() {
    // Every `WISE_PREFETCH` override value — off, short, the auto
    // default, the clamp ceiling, and back to auto — leaves results
    // bit-identical: the distance only changes *when* x lines arrive,
    // never what is computed from them.
    let _g = lock_active_isa();
    let _rpf = RestorePrefetch(simd::prefetch_override());
    let m = RmatParams::HIGH_SKEW.generate(9, 8, 1);
    let x = dense_x(m.ncols(), 0x0DD5);
    for cfg in [
        MethodConfig::csr(Schedule::Dyn),
        MethodConfig::sell_c_r(8),
        MethodConfig::sellpack(4, Schedule::St),
    ] {
        simd::set_prefetch(None);
        let base = run(&cfg, &m, &x, 2);
        for ov in [Some(0), Some(1), Some(8), Some(simd::MAX_PREFETCH), None] {
            simd::set_prefetch(ov);
            let got = run(&cfg, &m, &x, 2);
            for (i, (g, w)) in got.iter().zip(&base).enumerate() {
                assert_eq!(
                    g.to_bits(),
                    w.to_bits(),
                    "{}: override {ov:?} row {i}: {g} vs {w}",
                    cfg.label()
                );
            }
        }
    }
}

#[test]
fn wise_prefetch_grammar_accepts_distances_and_rejects_noise() {
    // The parse path behind the `WISE_PREFETCH` knob: unset/`auto` →
    // policy, `0` → off, big values clamp, and malformed input is an
    // error (the runtime warns once and falls back to auto — it never
    // silently changes numerics, per the sweep test above).
    use wise_kernels::simd::{parse_wise_prefetch, MAX_PREFETCH};
    use wise_trace::env_knob::KnobError;
    assert_eq!(parse_wise_prefetch(None), Ok(None));
    assert_eq!(parse_wise_prefetch(Some("auto")), Ok(None));
    assert_eq!(parse_wise_prefetch(Some("AUTO")), Ok(None));
    assert_eq!(parse_wise_prefetch(Some("0")), Ok(Some(0)));
    assert_eq!(parse_wise_prefetch(Some(" 8 ")), Ok(Some(8)));
    assert_eq!(parse_wise_prefetch(Some("4096")), Ok(Some(MAX_PREFETCH)));
    assert_eq!(parse_wise_prefetch(Some("")), Err(KnobError::Empty { knob: "WISE_PREFETCH" }));
    assert_eq!(parse_wise_prefetch(Some("   ")), Err(KnobError::Empty { knob: "WISE_PREFETCH" }));
    for junk in ["-2", "fast", "8x", "0.5", "p4"] {
        assert!(
            matches!(
                parse_wise_prefetch(Some(junk)),
                Err(KnobError::Invalid { knob: "WISE_PREFETCH", .. })
            ),
            "{junk:?} should be rejected"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The scalar tail of the vectorized CSR row kernel handles every
    /// `nnz % lanes` residue on every ISA the host can run.
    #[test]
    fn csr_row_tail_handles_every_residue(
        len in 0usize..64,
        seed in 0u64..u64::MAX,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ncols = 97usize;
        let x: Vec<f64> = (0..ncols).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let vals: Vec<f64> = (0..len).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let cols: Vec<u32> = (0..len).map(|_| rng.gen_range(0..ncols as u32)).collect();
        let want = simd::csr_row_scalar(&vals, &cols, &x);
        for isa in [SimdIsa::Scalar, SimdIsa::Sse2, SimdIsa::Avx2, SimdIsa::Avx512] {
            if isa > simd::detected() {
                continue;
            }
            // SAFETY: every entry of `cols` is < x.len().
            let got = unsafe { simd::csr_row(isa, &vals, &cols, &x) };
            prop_assert!(
                simd::ulp_close(got, want, SPMV_MAX_ULPS, SPMV_ABS_FLOOR),
                "{}: {} vs {} ({} ulps apart)",
                isa.name(), got, want, simd::ulp_distance(got, want)
            );
        }
    }
}
