//! Serial-vs-parallel conversion parity: `SrvPack::build` fans chunk
//! filling out over the PR 4 worker pool, and the resulting pack must
//! be **bit-identical** to [`SrvPack::build_serial`] — same row order,
//! same offsets, same padded lanes, same value bits — for every packing
//! policy and any thread count. Packing is pure data movement (no
//! floating-point arithmetic), so the contract is exact equality, not
//! an ulp bound; `PartialEq` on `SrvPack` compares every buffer.

use wise_gen::{suite, RmatParams};
use wise_kernels::srvpack::{PackConfig, SegmentSpec, SigmaSpec, SrvPack};
use wise_matrix::coo::DupPolicy;
use wise_matrix::{Coo, Csr};

fn zoo() -> Vec<(&'static str, Csr)> {
    let mut sparse_rect = Coo::new(12, 300);
    sparse_rect.push(0, 299, 3.0).unwrap();
    sparse_rect.push(3, 0, -1.0).unwrap();
    sparse_rect.push(3, 150, 4.0).unwrap();
    vec![
        ("rmat-ragged", RmatParams::HIGH_SKEW.generate(9, 8, 1)),
        ("rmat-short-rows", RmatParams::LOW_LOC.generate(8, 2, 2)),
        ("empty-rows-rect", sparse_rect.to_csr(DupPolicy::Sum)),
        ("zero", Csr::zero(17, 9)),
        ("stencil2d", suite::stencil_2d(23, 29)),
    ]
}

/// Every packing policy the catalog reaches, plus a masked chunk
/// height (c = 5) the catalog does not.
fn configs() -> Vec<PackConfig> {
    vec![
        PackConfig { c: 4, sigma: SigmaSpec::None, cfs: false, segments: SegmentSpec::One },
        PackConfig { c: 8, sigma: SigmaSpec::None, cfs: false, segments: SegmentSpec::One },
        PackConfig { c: 8, sigma: SigmaSpec::Window(64), cfs: false, segments: SegmentSpec::One },
        PackConfig { c: 4, sigma: SigmaSpec::Full, cfs: false, segments: SegmentSpec::One },
        PackConfig { c: 8, sigma: SigmaSpec::Full, cfs: true, segments: SegmentSpec::One },
        PackConfig {
            c: 8,
            sigma: SigmaSpec::Full,
            cfs: true,
            segments: SegmentSpec::DenseFraction(0.8),
        },
        PackConfig { c: 5, sigma: SigmaSpec::Window(32), cfs: false, segments: SegmentSpec::One },
    ]
}

#[test]
fn parallel_build_is_bit_identical_to_serial_for_every_policy() {
    for (tag, m) in zoo() {
        for config in configs() {
            let want = SrvPack::build_serial(&m, config);
            for nthreads in [1usize, 2, 3, 7, 16] {
                let got = SrvPack::build_with_threads(&m, config, nthreads);
                assert_eq!(got, want, "{tag}: {config:?} at {nthreads} threads diverged");
            }
        }
    }
}

#[test]
fn default_build_uses_pool_and_matches_serial() {
    // `build` (the path `MethodConfig::prepare` takes) routes through
    // the pool at `default_threads()`; it must be the same oracle.
    for (tag, m) in zoo() {
        for config in configs() {
            let want = SrvPack::build_serial(&m, config);
            let got = SrvPack::build(&m, config);
            assert_eq!(got, want, "{tag}: {config:?} default build diverged");
        }
    }
}
