//! Cascade parity: the two-stage selection fast path must never change
//! what WISE answers, only how fast it answers.
//!
//! Three contracts from DESIGN.md §16:
//!
//! 1. a stage-2 *fallthrough* [`Choice`] is field-identical (modulo the
//!    `cascade` provenance and measured timing) to a full
//!    [`Wise::select`];
//! 2. `WISE_CASCADE=0` (here via [`cascade::set_mode`]) is bit-exact
//!    with the pre-cascade pipeline — serialized choices carry no
//!    `cascade` key at all;
//! 3. stage-1 answers respect the calibrated P-ratio bound on the
//!    labeled quick corpus ([`cascade::P_RATIO_REL_FLOOR`]).
//!
//! Tests that touch the process-global `WISE_CASCADE` mode serialize on
//! a shared mutex and restore the previous value on drop, so the suite
//! is order- and parallelism-independent.

use std::sync::{Mutex, MutexGuard};
use wise_core::cascade::{self, CascadeMode, P_RATIO_REL_FLOOR};
use wise_core::labels::{label_corpus, CorpusLabels};
use wise_core::pipeline::{Choice, ChoiceTiming, TrainOptions, Wise};
use wise_core::{CascadeGate, CascadeStage, FallthroughReason};
use wise_features::{FeatureConfig, FeatureVector, ProbeFeatures};
use wise_gen::{Corpus, CorpusScale, RggParams, RmatParams};
use wise_kernels::MethodConfig;
use wise_matrix::Csr;
use wise_ml::TreeParams;
use wise_perf::Estimator;

static MODE_LOCK: Mutex<()> = Mutex::new(());

fn lock_mode() -> MutexGuard<'static, ()> {
    // A poisoned lock only means another parity test panicked; the
    // guard below restored the mode, so continuing is safe.
    MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Restores the saved cascade mode when dropped (even on panic).
struct RestoreMode(CascadeMode);

impl Drop for RestoreMode {
    fn drop(&mut self) {
        cascade::set_mode(self.0);
    }
}

fn train_opts() -> TrainOptions {
    TrainOptions {
        // Deterministic backend: parity must not depend on wall clocks.
        estimator: Estimator::model_for_rows(1 << 10),
        feature_config: FeatureConfig::default(),
        tree_params: TreeParams::default(),
    }
}

fn labeled() -> (Wise, CorpusLabels, TrainOptions) {
    let opts = train_opts();
    let corpus = Corpus::random(&CorpusScale::tiny(), 11);
    let labels = label_corpus(&corpus, &opts.estimator, &opts.feature_config);
    let wise = Wise::from_labels(&labels, &opts);
    (wise, labels, opts)
}

/// The RMAT/RGG zoo the parity contracts are checked across.
fn zoo() -> Vec<(&'static str, Csr)> {
    vec![
        ("rmat-high-skew", RmatParams::HIGH_SKEW.generate(9, 16, 77)),
        ("rmat-med-skew", RmatParams::MED_SKEW.generate(9, 8, 13)),
        ("rmat-low-skew", RmatParams::LOW_SKEW.generate(8, 8, 2)),
        ("rmat-low-loc", RmatParams::LOW_LOC.generate(8, 4, 5)),
        ("rmat-med-loc", RmatParams::MED_LOC.generate(9, 8, 21)),
        ("rgg-n400-d6", RggParams { n: 400, avg_degree: 6.0 }.generate(3)),
    ]
}

/// Field equality modulo `cascade` and measured `timing`.
fn assert_same_answer(tag: &str, got: &Choice, want: &Choice) {
    assert_eq!(got.index, want.index, "{tag}: index");
    assert_eq!(got.config.label(), want.config.label(), "{tag}: config");
    assert_eq!(got.predictions, want.predictions, "{tag}: predictions");
    assert_eq!(got.features, want.features, "{tag}: features");
    assert_eq!(got.decision_paths, want.decision_paths, "{tag}: decision paths");
}

#[test]
fn fallthrough_choice_is_field_identical_to_full_select() {
    let _g = lock_mode();
    let _restore = RestoreMode(cascade::mode());
    cascade::set_mode(CascadeMode::Auto);
    let (wise, _, _) = labeled();
    // A threshold-less gate falls through on every matrix, exercising
    // the stage-2 path end to end.
    let through_wise = wise.clone().with_cascade_gate(Some(CascadeGate {
        threshold: None,
        machine: None,
        calibration_p_ratio: 1.0,
        full_p_ratio: 1.0,
        calibration_accept_rate: 0.0,
    }));
    let full_wise = wise.with_cascade_gate(None);
    for (tag, m) in zoo() {
        let through = through_wise.select(&m);
        let info = through.cascade.as_ref().expect("fallthrough records provenance");
        assert_eq!(info.stage, CascadeStage::Stage2, "{tag}");
        assert_eq!(info.fallthrough, Some(FallthroughReason::NoThreshold), "{tag}");
        let full = full_wise.select(&m);
        assert!(full.cascade.is_none(), "{tag}: gateless select must not cascade");
        assert_same_answer(tag, &through, &full);
    }
}

#[test]
fn natural_gate_fallthroughs_also_match_full_select() {
    // Same contract under the *calibrated* gate: wherever the real
    // cascade declines, the answer must equal the full pipeline's.
    let _g = lock_mode();
    let _restore = RestoreMode(cascade::mode());
    cascade::set_mode(CascadeMode::Auto);
    let (wise, _, _) = labeled();
    let full_wise = wise.clone().with_cascade_gate(None);
    for (tag, m) in zoo() {
        let choice = wise.select(&m);
        let info = choice.cascade.as_ref().expect("gated select records provenance");
        if info.stage == CascadeStage::Stage2 {
            assert_same_answer(tag, &choice, &full_wise.select(&m));
        } else {
            // Accepted answers still come from the catalog, and an
            // all-leaves vote must equal the full pipeline exactly.
            assert_eq!(choice.predictions.len(), 29, "{tag}");
            if info.margin == f64::MAX {
                let full = full_wise.select(&m);
                assert_eq!(choice.index, full.index, "{tag}: exact stage-1 answer");
                assert_eq!(choice.predictions, full.predictions, "{tag}");
            }
        }
    }
}

#[test]
fn cascade_off_is_bit_exact_with_pre_cascade_pipeline() {
    let _g = lock_mode();
    let _restore = RestoreMode(cascade::mode());
    cascade::set_mode(CascadeMode::Off);
    let (wise, _, _) = labeled();
    assert!(wise.cascade_gate().is_some(), "trained instance carries a gate");
    let pre = wise.clone().with_cascade_gate(None);
    for (tag, m) in zoo() {
        let mut off = wise.select(&m);
        let mut want = pre.select(&m);
        assert!(off.cascade.is_none(), "{tag}: WISE_CASCADE=0 must not cascade");
        // Timing is wall-clock and request ids are per-process
        // provenance; zero both sides, then demand byte-identical
        // serializations — the pre-cascade contract.
        off.timing = ChoiceTiming::default();
        want.timing = ChoiceTiming::default();
        off.request_id = 0;
        want.request_id = 0;
        let off_json = serde_json::to_string(&off).unwrap();
        let want_json = serde_json::to_string(&want).unwrap();
        assert_eq!(off_json, want_json, "{tag}");
        assert!(!off_json.contains("\"cascade\""), "{tag}: no cascade key");
    }
}

#[test]
fn stage_one_answers_respect_calibrated_p_ratio_bound() {
    let (wise, labels, _) = labeled();
    let gate = wise.cascade_gate().expect("calibrated gate");
    let catalog = wise.registry().catalog();
    assert_eq!(catalog.len(), labels.catalog.len());
    let (mut cascade_sum, mut full_sum, mut accepted) = (0.0, 0.0, 0usize);
    for m in &labels.matrices {
        let oracle = m.seconds.iter().copied().fold(f64::MAX, f64::min);
        let full_idx = wise.select_from_features(m.features.clone()).index;
        let p_full = oracle / m.seconds[full_idx];
        full_sum += p_full;
        let known = ProbeFeatures::mask_full(&m.features);
        let vote = cascade::stage_one_vote(wise.registry(), &known);
        let fast = gate.threshold.map(|t| vote.margin >= t).unwrap_or(false);
        cascade_sum += if fast { oracle / m.seconds[vote.index] } else { p_full };
        accepted += fast as usize;
    }
    let n = labels.matrices.len() as f64;
    let (cascade_p, full_p) = (cascade_sum / n, full_sum / n);
    assert!(
        cascade_p >= P_RATIO_REL_FLOOR * full_p - 1e-9,
        "cascade P-ratio {cascade_p:.4} below floor ({:.4} of full {full_p:.4})",
        P_RATIO_REL_FLOOR
    );
    // The accounting above is exactly what calibration stored.
    assert!((cascade_p - gate.calibration_p_ratio).abs() < 1e-9);
    assert!((full_p - gate.full_p_ratio).abs() < 1e-9);
    assert!((accepted as f64 / n - gate.calibration_accept_rate).abs() < 1e-9);
}

#[test]
fn stage_one_choice_round_trips_and_config_labels_parse() {
    let _g = lock_mode();
    let _restore = RestoreMode(cascade::mode());
    cascade::set_mode(CascadeMode::Auto);
    let (wise, _, _) = labeled();
    // Forced-accept gate: every zoo matrix is answered in stage 1.
    let wise = wise.with_cascade_gate(Some(CascadeGate {
        threshold: Some(0.0),
        machine: None,
        calibration_p_ratio: 1.0,
        full_p_ratio: 1.0,
        calibration_accept_rate: 1.0,
    }));
    for (tag, m) in zoo() {
        let choice = wise.select(&m);
        let info = choice.cascade.expect("provenance");
        assert_eq!(info.stage, CascadeStage::Stage1, "{tag}");
        // The chosen config's label must round-trip through the parser
        // (labels are how choices land in ledgers and saved reports).
        let label = choice.config.label();
        assert_eq!(MethodConfig::parse(&label), Some(choice.config), "{tag}: {label}");
        // And the full Choice (cascade field included) survives JSON.
        let json = serde_json::to_string(&choice).unwrap();
        let back: Choice = serde_json::from_str(&json).unwrap();
        assert_eq!(back.cascade, choice.cascade, "{tag}");
        assert_eq!(back.index, choice.index, "{tag}");
        assert_eq!(back.features, choice.features, "{tag}");
    }
}

#[test]
fn probe_features_match_full_extractor_on_the_zoo() {
    // The cascade's safety argument rests on the probe being
    // bit-identical to the full extractor on the 22 shared features —
    // re-checked here on the parity zoo (unit tests cover the rest).
    let config = FeatureConfig::default();
    for (tag, m) in zoo() {
        let full = FeatureVector::extract(&m, &config);
        let known = ProbeFeatures::extract(&m).known_values();
        let mut checked = 0;
        for (i, v) in known.iter().enumerate() {
            if let Some(v) = v {
                assert_eq!(v.to_bits(), full.values()[i].to_bits(), "{tag}: feature {i}");
                checked += 1;
            }
        }
        assert_eq!(checked, ProbeFeatures::known_indices().len(), "{tag}");
    }
}
