//! "Shape" tests: the qualitative findings of the paper's Section 3
//! analysis, reproduced end to end through our generators, kernels and
//! machine model. These are the claims EXPERIMENTS.md tracks.

use wise_core::labels::MatrixLabels;
use wise_features::FeatureConfig;
use wise_gen::{suite, Recipe, RmatParams};
use wise_kernels::method::{Method, MethodConfig};
use wise_kernels::Schedule;
use wise_matrix::Csr;
use wise_perf::Estimator;

fn label(m: &Csr, max_rows_scale: u32) -> MatrixLabels {
    let est = Estimator::model_for_rows(1usize << max_rows_scale);
    MatrixLabels::compute("m", m, &est, &FeatureConfig::default())
}

fn seconds_of(l: &MatrixLabels, pred: impl Fn(&MethodConfig) -> bool) -> f64 {
    MethodConfig::catalog()
        .iter()
        .zip(&l.seconds)
        .filter(|(c, _)| pred(c))
        .map(|(_, &t)| t)
        .fold(f64::MAX, f64::min)
}

/// Insight (1)/(4): the fastest method differs across matrix classes —
/// one method does not win everywhere.
#[test]
fn no_single_method_wins_everywhere() {
    let scale = 12;
    let winners: std::collections::HashSet<Method> = [
        RmatParams::HIGH_SKEW.generate(scale, 32, 1),
        RmatParams::HIGH_LOC.generate(scale, 8, 2),
        suite::stencil_2d(64, 64),
        RmatParams::LOW_LOC.generate(scale, 64, 3),
        suite::road_like(4096, 4),
    ]
    .iter()
    .map(|m| {
        let l = label(m, scale);
        MethodConfig::catalog()[l.oracle_index()].method
    })
    .collect();
    assert!(winners.len() >= 2, "expected diverse winners across classes, got {winners:?}");
}

/// Insight (3): scheduling choice matters most under skew (Fig. 3).
#[test]
fn scheduling_gap_grows_with_skew() {
    let skewed = RmatParams::HIGH_SKEW.generate_shuffled(12, 16, 7);
    let balanced = suite::stencil_2d(64, 64);
    let gap = |m: &Csr| {
        let l = label(m, 12);
        let best = l.best_csr_seconds;
        let worst = seconds_of(&l, |c| c.method == Method::Csr && c.schedule == Schedule::StCont)
            .max(seconds_of(&l, |c| c.method == Method::Csr && c.schedule == Schedule::St));
        worst / best
    };
    let skew_gap = gap(&skewed);
    let flat_gap = gap(&balanced);
    assert!(
        skew_gap > flat_gap,
        "skewed gap {skew_gap:.2} should exceed balanced gap {flat_gap:.2}"
    );
}

/// Fig. 5 shape: under high skew with dense rows, the LAV family beats
/// padding-heavy SELLPACK.
#[test]
fn lav_family_beats_sellpack_under_high_skew() {
    let m = RmatParams::HIGH_SKEW.generate_shuffled(13, 32, 9);
    let l = label(&m, 13);
    let lav = seconds_of(&l, |c| matches!(c.method, Method::Lav | Method::Lav1Seg));
    let sellpack = seconds_of(&l, |c| c.method == Method::SellPack);
    assert!(lav < sellpack, "LAV {lav:.3e} should beat SELLPACK {sellpack:.3e} under skew");
}

/// Fig. 6 shape: on high-locality matrices, segmentation buys nothing —
/// the sigma family is at least competitive with full LAV.
#[test]
fn segmentation_unnecessary_for_high_locality() {
    let m = RmatParams::HIGH_LOC.generate(13, 16, 4);
    let l = label(&m, 13);
    let sigma =
        seconds_of(&l, |c| matches!(c.method, Method::SellCSigma | Method::SellPack | Method::Csr));
    let lav = seconds_of(&l, |c| c.method == Method::Lav);
    assert!(
        sigma <= lav * 1.1,
        "sigma family {sigma:.3e} should be competitive with LAV {lav:.3e} on HighLoc"
    );
}

/// Fig. 7/11 corpus shape: suite matrices are row-balanced, skew
/// recipes ordered HS < MS < LS in p-ratio.
#[test]
fn corpus_p_ratio_ordering_matches_paper() {
    let cfg = FeatureConfig::default();
    let p_of = |m: &Csr| wise_features::FeatureVector::extract(m, &cfg).get("p_R").unwrap();
    let hs = p_of(&Recipe::HighSkew.generate(12, 16, 1));
    let ms = p_of(&Recipe::MedSkew.generate(12, 16, 1));
    let ls = p_of(&Recipe::LowSkew.generate(12, 16, 1));
    let stencil = p_of(&suite::stencil_2d(64, 64));
    assert!(hs < ms && ms < ls && ls < stencil, "{hs} {ms} {ls} {stencil}");
    assert!(stencil > 0.4);
}

/// Section 4.4 shape: WISE preprocessing (features + one conversion) is
/// far cheaper than inspector-executor preprocessing (all conversions +
/// all trials).
#[test]
fn wise_preprocessing_is_cheaper_than_ie() {
    let m = RmatParams::MED_SKEW.generate(12, 16, 3);
    let l = label(&m, 12);
    let ie: f64 = l.preprocessing_seconds.iter().sum::<f64>() + l.cold_seconds.iter().sum::<f64>();
    let wise_worst = l.feature_extraction_seconds
        + l.preprocessing_seconds.iter().cloned().fold(0.0f64, f64::max);
    assert!(
        wise_worst < ie / 2.0,
        "WISE {wise_worst:.3e} should be <50% of IE {ie:.3e} (paper Section 6.4)"
    );
}

/// Table 1 guidance: "the higher the nonzero skew in the matrix is, the
/// higher the chosen T should be" — among LAV configs, HighSkew should
/// prefer a T at least as large as LowSkew's.
#[test]
fn best_lav_t_grows_with_skew() {
    let best_t = |m: &Csr| {
        let l = label(m, 14);
        MethodConfig::catalog()
            .iter()
            .zip(&l.seconds)
            .filter(|(c, _)| c.method == Method::Lav && c.c == 8)
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(c, _)| c.t)
            .unwrap()
    };
    let hs = best_t(&RmatParams::HIGH_SKEW.generate_shuffled(14, 32, 21));
    let ls = best_t(&RmatParams::LOW_SKEW.generate_shuffled(14, 32, 21));
    assert!(hs >= ls, "HighSkew best T {hs} should be >= LowSkew best T {ls}");
}

/// Fig. 2's premise: within the matrices a method wins, its speedup over
/// best CSR still varies — the magnitude matters, not just the winner.
#[test]
fn winning_method_speedups_vary() {
    use wise_gen::{Corpus, CorpusScale};
    let corpus = Corpus::random(&CorpusScale::tiny(), 17);
    let est = Estimator::model_for_rows(1 << 10);
    let mut per_method: std::collections::HashMap<Method, Vec<f64>> = Default::default();
    for lm in &corpus.matrices {
        let l = MatrixLabels::compute(&lm.name, &lm.matrix, &est, &FeatureConfig::default());
        let oi = l.oracle_index();
        let method = MethodConfig::catalog()[oi].method;
        per_method.entry(method).or_default().push(l.best_csr_seconds / l.seconds[oi]);
    }
    // At least one method wins over several matrices with a nontrivial
    // spread of speedups.
    let spread = per_method
        .values()
        .filter(|v| v.len() >= 5)
        .map(|v| {
            let max = v.iter().fold(0.0f64, |a, &b| a.max(b));
            let min = v.iter().fold(f64::MAX, |a, &b| a.min(b));
            max - min
        })
        .fold(0.0f64, f64::max);
    assert!(spread > 0.02, "winner speedups should vary, spread={spread}");
}

/// The preprocessing-cost tie-break ranks reflect real modeled
/// conversion costs: LAV costs more to build than SELLPACK, which costs
/// more than CSR (free).
#[test]
fn preproc_rank_order_matches_modeled_costs() {
    let m = RmatParams::MED_SKEW.generate(12, 16, 31);
    let l = label(&m, 12);
    let catalog = MethodConfig::catalog();
    let cost_of = |method: Method| {
        catalog
            .iter()
            .zip(&l.preprocessing_seconds)
            .filter(|(c, _)| c.method == method)
            .map(|(_, &t)| t)
            .fold(f64::MAX, f64::min)
    };
    assert_eq!(cost_of(Method::Csr), 0.0);
    assert!(cost_of(Method::SellPack) < cost_of(Method::SellCR));
    assert!(cost_of(Method::SellCR) < cost_of(Method::Lav));
}
