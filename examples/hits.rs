//! HITS (Kleinberg '99) — the second iterative-SpMV workload the
//! paper's introduction cites. Hub/authority iteration needs SpMV with
//! both `A` and `A^T`; WISE selects a (potentially different) method
//! for each, since the transpose of a skewed web graph has different
//! row/column skew.
//!
//! Run with: `cargo run --release -p wise-core --example hits`

use wise_core::pipeline::{TrainOptions, Wise};
use wise_gen::{Corpus, CorpusScale, RmatParams};
use wise_kernels::srvpack::SpmvWorkspace;

fn normalize(v: &mut [f64]) {
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-300);
    for x in v.iter_mut() {
        *x /= norm;
    }
}

fn main() {
    let threads = wise_kernels::sched::default_threads();
    println!("building a 2^13-node web graph...");
    let a = RmatParams::HIGH_SKEW.generate_shuffled(13, 16, 99);
    let at = a.transpose();

    println!("training WISE...");
    let scale = CorpusScale::tiny();
    let wise = Wise::train(&Corpus::full(&scale, 42), &TrainOptions::for_scale(&scale));

    // One selection per matrix: A drives authority updates, A^T hubs.
    let choice_a = wise.select(&a);
    let choice_at = wise.select(&at);
    println!("selected for A:   {}", choice_a.config.label());
    println!("selected for A^T: {}", choice_at.config.label());

    let prep_a = wise.prepare(&a, &choice_a);
    let prep_at = wise.prepare(&at, &choice_at);
    let n = a.nrows();
    let mut hubs = vec![1.0f64; n];
    let mut auth = vec![0.0f64; n];
    let mut ws = SpmvWorkspace::default();
    for _ in 0..30 {
        // auth = A^T hubs ; hubs = A auth.
        prep_at.spmv(&hubs, &mut auth, threads, &mut ws);
        normalize(&mut auth);
        prep_a.spmv(&auth, &mut hubs, threads, &mut ws);
        normalize(&mut hubs);
    }

    // Verify against the reference kernels for one final iteration.
    let mut auth_ref = vec![0.0; n];
    at.spmv_reference(&hubs, &mut auth_ref);
    let mut auth_fast = vec![0.0; n];
    prep_at.spmv(&hubs, &mut auth_fast, threads, &mut ws);
    let max_err =
        auth_ref.iter().zip(&auth_fast).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
    assert!(max_err < 1e-9, "kernel mismatch: {max_err}");

    let mut top: Vec<(usize, f64)> = auth.iter().copied().enumerate().collect();
    top.sort_by(|x, y| y.1.total_cmp(&x.1));
    println!("\ntop-5 authorities after 30 iterations:");
    for (node, score) in top.iter().take(5) {
        println!("  node {node:>6}  score {score:.4}");
    }
    println!("\nkernels verified against the reference (max err {max_err:.1e}).");
}
