//! Quickstart: train WISE on a small corpus, then let it pick and run
//! the best SpMV method for a new matrix.
//!
//! Run with: `cargo run --release -p wise-core --example quickstart`
//!
//! Pass `WISE_TRACE=1` to collect a trace of every pipeline stage, and
//! `-- --trace-out trace.json` to additionally write Chrome trace JSON
//! (open in Perfetto / `chrome://tracing`) plus a machine-readable
//! `perf_summary.json` next to it.
//!
//! `WISE_SNAPSHOT=<path>` additionally streams a periodic
//! `metrics_snapshot.json` (render it with `wise_top`), and
//! `-- --flight-demo` warms the per-request flight recorder and injects
//! one pathologically slow request so the anomaly dump
//! (`WISE_FLIGHT_DIR/flight_latest.json`) can be demonstrated — and
//! validated in CI — deterministically.

use wise_core::pipeline::{TrainOptions, Wise};
use wise_gen::{Corpus, CorpusScale, RmatParams};
use wise_trace::telemetry;

fn trace_out_path() -> Option<std::path::PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--trace-out" {
            return args.next().map(Into::into);
        } else if let Some(p) = a.strip_prefix("--trace-out=") {
            return Some(p.into());
        }
    }
    None
}

fn main() {
    // `--trace-out` implies tracing even without WISE_TRACE=1.
    let trace_out = trace_out_path();
    if trace_out.is_some() {
        wise_trace::set_enabled(true);
    }
    let flight_demo = std::env::args().skip(1).any(|a| a == "--flight-demo");
    // WISE_SNAPSHOT=<path> streams metrics_snapshot.json while we run;
    // dropping the handle at the end of main writes one final snapshot.
    let _snapshot = telemetry::snapshot_from_env();

    // 1. Train. The corpus scale and the label backend (deterministic
    //    machine model by default, wall clock with WISE_MEASURED=1) are
    //    the only knobs. Labeling and training record `label.*` /
    //    `train.*` spans; the wrapping span groups them in the trace.
    let scale = CorpusScale::tiny();
    println!("generating + labeling training corpus...");
    let (wise, corpus_len) = {
        let _train = wise_trace::span("pipeline.train");
        let corpus = Corpus::full(&scale, 42);
        (Wise::train(&corpus, &TrainOptions::for_scale(&scale)), corpus.len())
    };
    println!("trained {} models on {} matrices", wise.registry().catalog().len(), corpus_len);

    // 2. A new matrix WISE has never seen: a skewed power-law graph.
    let m = RmatParams::HIGH_SKEW.generate(10, 16, 2024);
    println!("\nnew matrix: {}x{}, {} nonzeros", m.nrows(), m.ncols(), m.nnz());

    // 3. Select: features -> 29 class predictions -> best config. The
    //    per-stage cost is always measured (choice.timing), traced or not.
    let choice = wise.select(&m);
    println!("WISE selected: {}", choice.config.label());
    println!(
        "predicted class: {} (representative speedup {:.2}x over best CSR)",
        choice.predictions[choice.index],
        choice.predictions[choice.index].representative_speedup()
    );
    println!(
        "selection cost: extract {:.1}us + predict {:.1}us + pick {:.1}us",
        choice.timing.feature_extraction_s * 1e6,
        choice.timing.predict_s * 1e6,
        choice.timing.select_s * 1e6
    );

    // 4. Convert once, iterate many times (the SpMV usage pattern).
    //    `prepare` records kernel.convert; each spmv records kernel.spmv.
    let prepared = wise.prepare(&m, &choice);
    let mut ws = wise_kernels::srvpack::SpmvWorkspace::default();
    let mut x = vec![1.0 / m.ncols() as f64; m.ncols()];
    let mut y = vec![0.0; m.nrows()];
    {
        let _iterate = wise_trace::span("pipeline.iterate");
        for _ in 0..10 {
            prepared.spmv(&x, &mut y, wise_kernels::sched::default_threads(), &mut ws);
            std::mem::swap(&mut x, &mut y);
        }
    }
    let norm: f64 = x.iter().map(|v| v * v).sum::<f64>().sqrt();
    println!("\nran 10 SpMV iterations; |x|_2 = {norm:.3e}");

    // Optional: demonstrate the flight recorder's anomaly trigger.
    if flight_demo {
        println!("\nflight demo: warming the latency history...");
        // Real selections arm the anomaly threshold (the trigger needs
        // FLIGHT_MIN_HISTORY observations before it fires).
        for _ in 0..telemetry::FLIGHT_MIN_HISTORY {
            let _ = wise.select(&m);
        }
        let threshold = telemetry::flight_stats()
            .threshold_ns
            .expect("warmed recorder arms the anomaly threshold");
        // Inject one request far beyond the armed threshold: the
        // recorder must flag it and dump the surrounding window.
        let id = telemetry::next_request_id();
        let flagged = telemetry::record_request(telemetry::RequestRecord {
            id,
            start_ns: telemetry::now_ns(),
            latency_ns: threshold.saturating_mul(10),
            method: choice.config.label(),
            stage: "full",
            margin: None,
            predicted_s: None,
            measured_s: None,
            pmu: None,
        });
        assert!(flagged, "injected slow request must trip the anomaly trigger");
        let stats = telemetry::flight_stats();
        println!(
            "flight demo: request {id} flagged ({} requests, {} anomalies, threshold {}ns)",
            stats.requests, stats.anomalies, threshold
        );
        if let Ok(dir) = std::env::var("WISE_FLIGHT_DIR") {
            if !dir.is_empty() {
                println!("[artifact] {dir}/flight_latest.json");
            }
        }
    }

    // 5. Flush the trace: run report on stderr, JSON artifacts if asked.
    if wise_trace::enabled() {
        let events = wise_trace::take_events();
        if let Some(path) = &trace_out {
            let summary_path =
                wise_trace::write_trace_files(&events, path).expect("write trace files");
            println!("\n[artifact] {}", path.display());
            println!("[artifact] {}", summary_path.display());
        }
        let summary = wise_trace::Summary::from_events(&events);
        eprint!("{}", wise_trace::run_report(&summary));
    }
}
