//! Quickstart: train WISE on a small corpus, then let it pick and run
//! the best SpMV method for a new matrix.
//!
//! Run with: `cargo run --release -p wise-core --example quickstart`

use wise_core::pipeline::{TrainOptions, Wise};
use wise_gen::{Corpus, CorpusScale, RmatParams};

fn main() {
    // 1. Train. The corpus scale and the label backend (deterministic
    //    machine model by default, wall clock with WISE_MEASURED=1) are
    //    the only knobs.
    let scale = CorpusScale::tiny();
    println!("generating + labeling training corpus...");
    let corpus = Corpus::full(&scale, 42);
    let wise = Wise::train(&corpus, &TrainOptions::for_scale(&scale));
    println!("trained {} models on {} matrices", wise.registry().catalog().len(), corpus.len());

    // 2. A new matrix WISE has never seen: a skewed power-law graph.
    let m = RmatParams::HIGH_SKEW.generate(10, 16, 2024);
    println!("\nnew matrix: {}x{}, {} nonzeros", m.nrows(), m.ncols(), m.nnz());

    // 3. Select: features -> 29 class predictions -> best config.
    let choice = wise.select(&m);
    println!("WISE selected: {}", choice.config.label());
    println!(
        "predicted class: {} (representative speedup {:.2}x over best CSR)",
        choice.predictions[choice.index],
        choice.predictions[choice.index].representative_speedup()
    );

    // 4. Convert once, iterate many times (the SpMV usage pattern).
    let prepared = wise.prepare(&m, &choice);
    let mut ws = wise_kernels::srvpack::SpmvWorkspace::default();
    let mut x = vec![1.0 / m.ncols() as f64; m.ncols()];
    let mut y = vec![0.0; m.nrows()];
    for _ in 0..10 {
        prepared.spmv(&x, &mut y, wise_kernels::sched::default_threads(), &mut ws);
        std::mem::swap(&mut x, &mut y);
    }
    let norm: f64 = x.iter().map(|v| v * v).sum::<f64>().sqrt();
    println!("\nran 10 SpMV iterations; |x|_2 = {norm:.3e}");
}
