//! Model lifecycle: train WISE, persist it as JSON, reload it, and use
//! the reloaded instance — the workflow of a math library shipping a
//! pre-trained WISE (the paper envisions WISE embedded in MKL-like
//! libraries).
//!
//! Run with: `cargo run --release -p wise-core --example train_and_save`

use wise_core::pipeline::{TrainOptions, Wise};
use wise_gen::{Corpus, CorpusScale, RmatParams};

fn main() {
    let scale = CorpusScale::tiny();
    println!("training on the tiny corpus...");
    let corpus = Corpus::full(&scale, 42);
    let wise = Wise::train(&corpus, &TrainOptions::for_scale(&scale));

    let path = std::env::temp_dir().join("wise_model.json");
    wise.save(&path).expect("save model");
    let bytes = std::fs::metadata(&path).unwrap().len();
    println!("saved trained model to {} ({bytes} bytes)", path.display());

    let reloaded = Wise::load(&path).expect("load model");
    println!("reloaded: {} models", reloaded.registry().catalog().len());

    // The reloaded model behaves identically.
    for (name, m) in [
        ("power-law", RmatParams::HIGH_SKEW.generate(10, 16, 9)),
        ("uniform", RmatParams::LOW_LOC.generate(10, 8, 9)),
        ("diagonal", RmatParams::HIGH_LOC.generate(10, 8, 9)),
    ] {
        let a = wise.select(&m);
        let b = reloaded.select(&m);
        assert_eq!(a.config.label(), b.config.label());
        println!("{name:<10} -> {}", b.config.label());
    }
    let _ = std::fs::remove_file(&path);
    println!("\noriginal and reloaded models agree on every selection.");
}
