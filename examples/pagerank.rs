//! PageRank on a power-law web graph — the iterative-SpMV workload the
//! paper's introduction motivates (Brin & Page '98). Compares the
//! fixed MKL-like baseline kernel against the WISE-selected method on
//! the same graph, verifying both produce the same ranking.
//!
//! Run with: `cargo run --release -p wise-core --example pagerank`

use std::time::Instant;
use wise_core::pipeline::{TrainOptions, Wise};
use wise_features::FeatureVector;
use wise_gen::{Corpus, CorpusScale, RmatParams};
use wise_kernels::baseline::mkl_like_config;
use wise_kernels::method::MethodConfig;
use wise_kernels::srvpack::SpmvWorkspace;
use wise_matrix::Csr;

/// Column-stochastic scaling of the adjacency transpose: PageRank
/// iterates x' = d * P x + (1-d)/n with P[i][j] = A[j][i] / outdeg(j).
fn pagerank_matrix(adj: &Csr) -> Csr {
    let outdeg = adj.nnz_per_row();
    let t = adj.transpose();
    let mut vals = Vec::with_capacity(t.nnz());
    for r in 0..t.nrows() {
        for (c, _) in t.row(r) {
            vals.push(1.0 / outdeg[c as usize] as f64);
        }
    }
    Csr::try_new(t.nrows(), t.ncols(), t.row_ptr().to_vec(), t.col_idx().to_vec(), vals)
        .expect("stochastic matrix is valid")
}

fn pagerank(p: &MethodConfig, m: &Csr, iters: usize, threads: usize) -> (Vec<f64>, f64) {
    let n = m.nrows();
    let damping = 0.85;
    let prepared = p.prepare(m);
    let mut ws = SpmvWorkspace::default();
    let mut x = vec![1.0 / n as f64; n];
    let mut y = vec![0.0; n];
    let t0 = Instant::now();
    for _ in 0..iters {
        prepared.spmv(&x, &mut y, threads, &mut ws);
        let teleport = (1.0 - damping) / n as f64;
        for yi in y.iter_mut() {
            *yi = damping * *yi + teleport;
        }
        std::mem::swap(&mut x, &mut y);
    }
    (x, t0.elapsed().as_secs_f64())
}

fn main() {
    let threads = wise_kernels::sched::default_threads();
    println!("building a 2^13-node power-law web graph...");
    let adj = RmatParams::HIGH_SKEW.generate(13, 16, 7);
    let m = pagerank_matrix(&adj);

    println!("training WISE...");
    let scale = CorpusScale::tiny();
    let opts = TrainOptions::for_scale(&scale);
    let wise = Wise::train(&Corpus::full(&scale, 42), &opts);
    let choice = wise.select(&m);
    if let Some(info) = &choice.cascade {
        println!("cascade: answered in {:?} (margin {:.3})", info.stage, info.margin);
    }
    println!("WISE selected {} for the PageRank matrix", choice.config.label());

    let iters = 20;
    // An iterative solver knows its iteration count up front: refine the
    // pick with the amortized tier, reusing the features the plain
    // selection already extracted instead of paying extraction twice.
    // (A cascade stage-1 answer only carries the probe subset, so the
    // full vector is extracted in that case.)
    let features = match &choice.cascade {
        Some(info) if info.stage == wise_core::CascadeStage::Stage1 => {
            FeatureVector::extract(&m, wise.feature_config())
        }
        _ => choice.features.clone(),
    };
    let amortized =
        wise.select_for_iterations_from_features(&m, features, &opts.estimator, iters as u64);
    println!(
        "amortized over {iters} iterations: {} (feature extraction reused, {:.1}us saved)",
        amortized.config.label(),
        choice.timing.feature_extraction_s * 1e6
    );
    let (pr_mkl, t_mkl) = pagerank(&mkl_like_config(), &m, iters, threads);
    let (pr_wise, t_wise) = pagerank(&choice.config, &m, iters, threads);

    // Same ranking from both kernels (floating-point-tolerant).
    let mut max_diff = 0.0f64;
    for (a, b) in pr_mkl.iter().zip(&pr_wise) {
        max_diff = max_diff.max((a - b).abs());
    }
    assert!(max_diff < 1e-12, "kernels disagree: {max_diff}");

    let mut top: Vec<(usize, f64)> = pr_wise.iter().copied().enumerate().collect();
    top.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("\ntop-5 pages by rank:");
    for (node, score) in top.iter().take(5) {
        println!("  node {node:>6}  score {score:.3e}");
    }
    println!(
        "\n{iters} iterations on {threads} thread(s): MKL-like {t_mkl:.3}s, WISE choice {t_wise:.3}s"
    );
    println!("(wall-clock differences need real multicore hardware; results are identical)");
}
