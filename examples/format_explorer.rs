//! Format explorer: for a chosen matrix, print its WISE features and
//! the modeled execution time of all 29 `{method, parameter}`
//! configurations, ranked — a view into *why* WISE picks what it picks.
//!
//! Usage:
//!   cargo run --release -p wise-core --example format_explorer -- HS 12 16
//!   cargo run --release -p wise-core --example format_explorer -- path/to/matrix.mtx
//!
//! The first form generates a recipe matrix (abbrev, log2 rows, degree);
//! the second loads a Matrix Market file.

use wise_features::{FeatureConfig, FeatureVector};
use wise_gen::Recipe;
use wise_matrix::Csr;
use wise_perf::Estimator;

fn load_matrix(args: &[String]) -> (String, Csr) {
    match args {
        [path] if path.ends_with(".mtx") => {
            let m = wise_matrix::io::read_matrix_market(path).expect("readable .mtx file");
            (path.clone(), m)
        }
        [abbrev, scale, degree] => {
            let recipe = Recipe::ALL
                .into_iter()
                .find(|r| r.abbrev().eq_ignore_ascii_case(abbrev))
                .unwrap_or_else(|| panic!("unknown recipe '{abbrev}' (HS MS LS LL ML HL rgg)"));
            let s: u32 = scale.parse().expect("log2 rows");
            let d: u32 = degree.parse().expect("avg degree");
            (format!("{}_s{}_d{}", recipe.abbrev(), s, d), recipe.generate(s, d, 42))
        }
        [] => ("HS_s12_d16 (default)".into(), Recipe::HighSkew.generate(12, 16, 42)),
        _ => panic!("usage: format_explorer [<recipe> <log2rows> <degree> | file.mtx]"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (name, m) = load_matrix(&args);
    println!("matrix {name}: {} x {}, {} nonzeros", m.nrows(), m.ncols(), m.nnz());

    // Key features.
    let f = FeatureVector::extract(&m, &FeatureConfig::default());
    println!("\nkey features:");
    for key in ["mean_R", "gini_R", "p_R", "gini_C", "gini_T", "ne_T", "uniqC", "potReuseR"] {
        println!("  {key:<12} = {:.4}", f.get(key).unwrap());
    }

    // Modeled times, all 29 configurations.
    let est = Estimator::from_env(m.nrows());
    let mut times = est.time_catalog(&m);
    let best_csr = times
        .iter()
        .filter(|(c, _)| c.method == wise_kernels::Method::Csr)
        .map(|&(_, t)| t)
        .fold(f64::MAX, f64::min);
    times.sort_by(|a, b| a.1.total_cmp(&b.1));
    println!("\nall 29 configurations, fastest first (times from the machine model):");
    println!("{:<28} {:>12} {:>10} {:>8}", "config", "seconds", "vs bestCSR", "padding");
    for (cfg, t) in &times {
        let prep = cfg.prepare(&m);
        let pad = match prep.nnz_padded() {
            0 => "-".to_string(),
            p => format!("{:.2}x", p as f64 / m.nnz() as f64),
        };
        println!("{:<28} {:>12.3e} {:>9.2}x {:>8}", cfg.label(), t, best_csr / t, pad);
    }
}
