//! Extending WISE with new configurations — the paper's Section 7
//! claim: because each `{method, parameter}` pair has its *own*
//! performance model predicting a speedup class (rather than one model
//! that names a winner), new configurations can be added without
//! retraining or even touching the existing models.
//!
//! This example extends the catalog with configurations the paper does
//! not evaluate — a wider σ for Sell-c-σ (2^16) and a more aggressive
//! LAV threshold (T = 0.95) — trains a registry over the extended
//! catalog, and shows the selection machinery picking them up.
//!
//! Run with: `cargo run --release -p wise-core --example extend_wise`

use wise_core::labels::label_corpus_with;
use wise_core::pipeline::{TrainOptions, Wise};
use wise_core::ModelRegistry;
use wise_gen::{Corpus, CorpusScale};
use wise_kernels::method::MethodConfig;
use wise_kernels::Schedule;

fn main() {
    // The standard 29 configurations + 3 new ones.
    let mut catalog = MethodConfig::catalog();
    catalog.push(MethodConfig::sell_c_sigma(8, 65536, Schedule::Dyn));
    catalog.push(MethodConfig::lav(8, 0.95));
    catalog.push(MethodConfig::lav(4, 0.95));
    println!("extended catalog: {} configurations", catalog.len());

    let scale = CorpusScale::tiny();
    let corpus = Corpus::full(&scale, 42);
    let opts = TrainOptions::for_scale(&scale);

    println!("labeling {} matrices over the extended catalog...", corpus.len());
    let labels = label_corpus_with(&corpus, &opts.estimator, &opts.feature_config, catalog);
    let registry = ModelRegistry::train(&labels, opts.tree_params);
    let wise = Wise::from_registry(registry, opts.feature_config);

    // How often does a new configuration win the selection?
    let mut new_wins = 0usize;
    for lm in &corpus.matrices {
        let choice = wise.select(&lm.matrix);
        if choice.config.sigma == 65536 || choice.config.t == 0.95 {
            new_wins += 1;
        }
    }
    println!("new configurations selected for {new_wins}/{} corpus matrices", corpus.len());

    // Run one of the new configs end to end to show it is executable.
    let m = wise_gen::RmatParams::HIGH_SKEW.generate_shuffled(10, 32, 7);
    let choice = wise.select(&m);
    println!("selection for a fresh high-skew matrix: {}", choice.config.label());
    let x = vec![1.0; m.ncols()];
    let mut y = vec![0.0; m.nrows()];
    wise.run_spmv(&m, &choice, &x, &mut y, 1);
    let mut want = vec![0.0; m.nrows()];
    m.spmv_reference(&x, &mut want);
    let max_err = y.iter().zip(&want).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
    println!("max |error| vs reference: {max_err:.2e}");
    assert!(max_err < 1e-9);
}
