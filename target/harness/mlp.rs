//! Standalone harness: validates the planned MLP kernel shapes on rustc
//! stable (intrinsic signatures, target_feature on const-generic fns)
//! and measures scalar vs v8 vs v8+pf vs v8+pf+il throughput.
#![allow(dead_code)]
use std::arch::x86_64::*;
use std::time::Instant;

// --- tiny deterministic rng (no deps) ---
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
    fn f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn csr_row_scalar(vals: &[f64], cols: &[u32], x: &[f64]) -> f64 {
    let mut acc = 0.0;
    for (v, &c) in vals.iter().zip(cols) {
        acc += v * x[c as usize];
    }
    acc
}

#[target_feature(enable = "avx512f")]
unsafe fn csr_rows_avx512<const R: usize>(
    ranges: &[(usize, usize); R],
    vals: &[f64],
    cols: &[u32],
    x: &[f64],
    pf: usize,
) -> [f64; R] {
    let dist = pf * 8;
    let mut acc = [_mm512_setzero_pd(); R];
    // Interleaved phase: all R rows advance one vector step per round.
    let mut steps = usize::MAX;
    for r in ranges.iter().take(R) {
        steps = steps.min((r.1 - r.0) / 8);
    }
    for s in 0..steps {
        for i in 0..R {
            let k = ranges[i].0 + s * 8;
            if dist > 0 && k + dist + 8 <= ranges[i].1 {
                let p = k + dist;
                for j in 0..8 {
                    _mm_prefetch::<_MM_HINT_T0>(
                        x.as_ptr().add(*cols.get_unchecked(p + j) as usize) as *const i8,
                    );
                }
            }
            let idx = _mm256_loadu_si256(cols.as_ptr().add(k) as *const __m256i);
            let xv = _mm512_i32gather_pd::<8>(idx, x.as_ptr());
            let vv = _mm512_loadu_pd(vals.as_ptr().add(k));
            acc[i] = _mm512_fmadd_pd(vv, xv, acc[i]);
        }
    }
    // Per-row remainder: leftover full steps, then a masked tail.
    let mut out = [0.0f64; R];
    for i in 0..R {
        let (k0, k1) = ranges[i];
        let mut k = k0 + steps * 8;
        let mut a = acc[i];
        while k + 8 <= k1 {
            if dist > 0 && k + dist + 8 <= k1 {
                let p = k + dist;
                for j in 0..8 {
                    _mm_prefetch::<_MM_HINT_T0>(
                        x.as_ptr().add(*cols.get_unchecked(p + j) as usize) as *const i8,
                    );
                }
            }
            let idx = _mm256_loadu_si256(cols.as_ptr().add(k) as *const __m256i);
            let xv = _mm512_i32gather_pd::<8>(idx, x.as_ptr());
            let vv = _mm512_loadu_pd(vals.as_ptr().add(k));
            a = _mm512_fmadd_pd(vv, xv, a);
            k += 8;
        }
        let rem = k1 - k;
        if rem > 0 {
            let m: __mmask8 = (1u8 << rem) - 1;
            let mut buf = [0u32; 8];
            buf[..rem].copy_from_slice(&cols[k..k1]);
            let idx = _mm256_loadu_si256(buf.as_ptr() as *const __m256i);
            let xv = _mm512_mask_i32gather_pd::<8>(_mm512_setzero_pd(), m, idx, x.as_ptr());
            let vv = _mm512_maskz_loadu_pd(m, vals.as_ptr().add(k));
            a = _mm512_fmadd_pd(vv, xv, a);
        }
        out[i] = _mm512_reduce_add_pd(a);
    }
    out
}

#[target_feature(enable = "avx512f")]
unsafe fn sell_chunk_avx512_pf(vals: &[f64], cols: &[u32], x: &[f64], acc: &mut [f64], pf: usize) {
    let steps = vals.len() / 8;
    let dist = pf * 8;
    let mut a = _mm512_loadu_pd(acc.as_ptr());
    for s in 0..steps {
        let base = s * 8;
        if dist > 0 && base + dist + 8 <= vals.len() {
            let p = base + dist;
            for j in 0..8 {
                _mm_prefetch::<_MM_HINT_T0>(
                    x.as_ptr().add(*cols.get_unchecked(p + j) as usize) as *const i8
                );
            }
        }
        let idx = _mm256_loadu_si256(cols.as_ptr().add(base) as *const __m256i);
        let xv = _mm512_i32gather_pd::<8>(idx, x.as_ptr());
        let vv = _mm512_loadu_pd(vals.as_ptr().add(base));
        a = _mm512_fmadd_pd(vv, xv, a);
    }
    _mm512_storeu_pd(acc.as_mut_ptr(), a);
}

/// Masked SELL chunk for heights 1..8 (c not in {4,8} dispatch case).
#[target_feature(enable = "avx512f")]
unsafe fn sell_chunk_avx512_masked(
    vals: &[f64],
    cols: &[u32],
    c: usize,
    x: &[f64],
    acc: &mut [f64],
    pf: usize,
) {
    let steps = vals.len() / c;
    if steps == 0 {
        return;
    }
    let m: __mmask8 = (1u16 << c) as u8 - 1;
    let dist = pf * c;
    let mut a = _mm512_maskz_loadu_pd(m, acc.as_ptr());
    // All but the last step may read a full 8-lane index block: the
    // inactive lanes land inside the next step's entries.
    for s in 0..steps - 1 {
        let base = s * c;
        if dist > 0 && base + dist + c <= vals.len() {
            let p = base + dist;
            for j in 0..c {
                _mm_prefetch::<_MM_HINT_T0>(
                    x.as_ptr().add(*cols.get_unchecked(p + j) as usize) as *const i8
                );
            }
        }
        let idx = _mm256_loadu_si256(cols.as_ptr().add(base) as *const __m256i);
        let xv = _mm512_mask_i32gather_pd::<8>(_mm512_setzero_pd(), m, idx, x.as_ptr());
        let vv = _mm512_maskz_loadu_pd(m, vals.as_ptr().add(base));
        a = _mm512_fmadd_pd(vv, xv, a);
    }
    let base = (steps - 1) * c;
    let mut buf = [0u32; 8];
    buf[..c].copy_from_slice(&cols[base..base + c]);
    let idx = _mm256_loadu_si256(buf.as_ptr() as *const __m256i);
    let xv = _mm512_mask_i32gather_pd::<8>(_mm512_setzero_pd(), m, idx, x.as_ptr());
    let vv = _mm512_maskz_loadu_pd(m, vals.as_ptr().add(base));
    a = _mm512_fmadd_pd(vv, xv, a);
    for l in 0..c {
        let mut t = [0.0f64; 8];
        _mm512_storeu_pd(t.as_mut_ptr(), a);
        acc[l] = t[l];
        break;
    }
    let mut t = [0.0f64; 8];
    _mm512_storeu_pd(t.as_mut_ptr(), a);
    acc[..c].copy_from_slice(&t[..c]);
}

fn ulp(a: f64, b: f64) -> u64 {
    if a == b {
        return 0;
    }
    fn key(x: f64) -> i64 {
        let b = x.to_bits() as i64;
        if b < 0 {
            i64::MIN.wrapping_add(b.wrapping_neg())
        } else {
            b
        }
    }
    key(a).abs_diff(key(b))
}

fn main() {
    assert!(is_x86_feature_detected!("avx512f"), "need avx512f host");
    let mut rng = Rng(0x9e3779b97f4a7c15);
    // Long-row CSR problem: rows of ~512 nnz, x big enough to miss LLC.
    let ncols: usize = 1 << 22; // 32 MB x vector
    let nrows: usize = 4096;
    let row_len: usize = 509; // odd: exercises masked tail
    let n = nrows * row_len;
    let vals: Vec<f64> = (0..n).map(|_| rng.f64()).collect();
    let cols: Vec<u32> = (0..n).map(|_| rng.below(ncols as u64) as u32).collect();
    let x: Vec<f64> = (0..ncols).map(|_| rng.f64()).collect();
    let row_ptr: Vec<usize> = (0..=nrows).map(|r| r * row_len).collect();

    // --- parity: every (pf, R) combo vs scalar ---
    let mut worst = 0u64;
    for r in 0..64 {
        let (k0, k1) = (row_ptr[r], row_ptr[r + 1]);
        let want = csr_row_scalar(&vals[k0..k1], &cols[k0..k1], &x);
        for pf in [0usize, 1, 2, 4, 8] {
            let got1 = unsafe { csr_rows_avx512::<1>(&[(k0, k1)], &vals, &cols, &x, pf) }[0];
            let got2 = unsafe {
                csr_rows_avx512::<2>(&[(k0, k1), (k0, k1)], &vals, &cols, &x, pf)
            }[1];
            let got4 = unsafe {
                csr_rows_avx512::<4>(&[(k0, k1); 4], &vals, &cols, &x, pf)
            }[3];
            assert_eq!(got1.to_bits(), got2.to_bits(), "R must be pure scheduling");
            assert_eq!(got1.to_bits(), got4.to_bits(), "R must be pure scheduling");
            worst = worst.max(ulp(got1, want));
        }
    }
    println!("csr parity worst ulp vs scalar: {worst}");
    assert!(worst <= 1024);

    // masked SELL parity for odd heights
    for c in [2usize, 3, 5, 6, 7] {
        let steps = 97;
        let sv: Vec<f64> = (0..steps * c).map(|_| rng.f64()).collect();
        let sc: Vec<u32> = (0..steps * c).map(|_| rng.below(ncols as u64) as u32).collect();
        let mut want = vec![0.25f64; c];
        for s in 0..steps {
            for l in 0..c {
                want[l] += sv[s * c + l] * x[sc[s * c + l] as usize];
            }
        }
        for pf in [0usize, 4] {
            let mut got = vec![0.25f64; c];
            unsafe { sell_chunk_avx512_masked(&sv, &sc, c, &x, &mut got, pf) };
            for l in 0..c {
                assert!(ulp(got[l], want[l]) <= 1024, "c={c} lane {l}");
            }
        }
    }
    println!("masked sell parity ok (c in 2..8)");

    // --- timing ---
    let mut y = vec![0.0f64; nrows];
    let time = |f: &mut dyn FnMut(&mut [f64]), y: &mut [f64]| -> f64 {
        let mut best = f64::MAX;
        for _ in 0..5 {
            let t = Instant::now();
            f(y);
            best = best.min(t.elapsed().as_secs_f64());
        }
        best
    };

    let mut scalar = |y: &mut [f64]| {
        for r in 0..nrows {
            y[r] = csr_row_scalar(&vals[row_ptr[r]..row_ptr[r + 1]], &cols[row_ptr[r]..row_ptr[r + 1]], &x);
        }
    };
    let t_scalar = time(&mut scalar, &mut y);
    let y_ref = y.clone();

    for (pf, il, tag) in [
        (0usize, 1usize, "v8            "),
        (2, 1, "v8 pf2        "),
        (4, 1, "v8 pf4        "),
        (8, 1, "v8 pf8        "),
        (0, 2, "v8 il2        "),
        (0, 4, "v8 il4        "),
        (2, 2, "v8 pf2 il2    "),
        (2, 4, "v8 pf2 il4    "),
        (4, 2, "v8 pf4 il2    "),
        (4, 4, "v8 pf4 il4    "),
        (8, 4, "v8 pf8 il4    "),
    ] {
        let mut f = |y: &mut [f64]| {
            let mut r = 0;
            match il {
                4 => {
                    while r + 4 <= nrows {
                        let rg = [
                            (row_ptr[r], row_ptr[r + 1]),
                            (row_ptr[r + 1], row_ptr[r + 2]),
                            (row_ptr[r + 2], row_ptr[r + 3]),
                            (row_ptr[r + 3], row_ptr[r + 4]),
                        ];
                        let o = unsafe { csr_rows_avx512::<4>(&rg, &vals, &cols, &x, pf) };
                        y[r..r + 4].copy_from_slice(&o);
                        r += 4;
                    }
                }
                2 => {
                    while r + 2 <= nrows {
                        let rg = [(row_ptr[r], row_ptr[r + 1]), (row_ptr[r + 1], row_ptr[r + 2])];
                        let o = unsafe { csr_rows_avx512::<2>(&rg, &vals, &cols, &x, pf) };
                        y[r..r + 2].copy_from_slice(&o);
                        r += 2;
                    }
                }
                _ => {}
            }
            while r < nrows {
                let rg = [(row_ptr[r], row_ptr[r + 1])];
                y[r] = unsafe { csr_rows_avx512::<1>(&rg, &vals, &cols, &x, pf) }[0];
                r += 1;
            }
        };
        let t = time(&mut f, &mut y);
        for r in 0..nrows {
            assert!(ulp(y[r], y_ref[r]) <= 1024 || (y[r] - y_ref[r]).abs() < 1e-9, "{tag} row {r}");
        }
        println!("csr {tag} {:8.3} ms  speedup {:5.2}x", t * 1e3, t_scalar / t);
    }
    println!("csr scalar         {:8.3} ms", t_scalar * 1e3);

    // --- SELL c=8 timing: pack rows 8-at-a-time (uniform length: no padding) ---
    let c = 8usize;
    let nch = nrows / c;
    let width = row_len;
    let mut pv = vec![0.0f64; nch * width * c];
    let mut pc = vec![0u32; nch * width * c];
    for ch in 0..nch {
        for lane in 0..c {
            let r = ch * c + lane;
            for j in 0..width {
                pv[ch * width * c + j * c + lane] = vals[row_ptr[r] + j];
                pc[ch * width * c + j * c + lane] = cols[row_ptr[r] + j];
            }
        }
    }
    let mut sell_scalar = |y: &mut [f64]| {
        for ch in 0..nch {
            let base = ch * width * c;
            let mut acc = [0.0f64; 8];
            for s in 0..width {
                for l in 0..c {
                    acc[l] += pv[base + s * c + l] * x[pc[base + s * c + l] as usize];
                }
            }
            y[ch * c..ch * c + c].copy_from_slice(&acc);
        }
    };
    let ts = time(&mut sell_scalar, &mut y);
    for pf in [0usize, 1, 2, 4, 8, 16] {
        let mut f = |y: &mut [f64]| {
            for ch in 0..nch {
                let base = ch * width * c;
                let mut acc = [0.0f64; 8];
                unsafe {
                    sell_chunk_avx512_pf(
                        &pv[base..base + width * c],
                        &pc[base..base + width * c],
                        &x,
                        &mut acc,
                        pf,
                    )
                };
                y[ch * c..ch * c + c].copy_from_slice(&acc);
            }
        };
        let t = time(&mut f, &mut y);
        println!("sell c8 pf{pf:<2}      {:8.3} ms  speedup {:5.2}x", t * 1e3, ts / t);
    }
    println!("sell c8 scalar     {:8.3} ms", ts * 1e3);
}
