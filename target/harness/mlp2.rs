//! Regime 2: cache-resident x (the bench_regress probe shape) — gather
//! latency bound, not DRAM bound.
include!("kernels.rs");

fn main() {
    assert!(is_x86_feature_detected!("avx512f"));
    let mut rng = Rng(0x12345678abcdef01);
    for (ncols, nrows, row_len, tag) in [
        (8192usize, 8192usize, 16usize, "short-row L2x"),
        (8192, 2048, 64, "mid-row   L2x"),
        (65536, 2048, 256, "long-row  LLCx"),
    ] {
        let n = nrows * row_len;
        let vals: Vec<f64> = (0..n).map(|_| rng.f64()).collect();
        let cols: Vec<u32> = (0..n).map(|_| rng.below(ncols as u64) as u32).collect();
        let x: Vec<f64> = (0..ncols).map(|_| rng.f64()).collect();
        let row_ptr: Vec<usize> = (0..=nrows).map(|r| r * row_len).collect();
        let mut y = vec![0.0f64; nrows];
        let iters = (40_000_000 / n).max(3);
        let time = |f: &mut dyn FnMut(&mut [f64]), y: &mut [f64]| -> f64 {
            let mut best = f64::MAX;
            for _ in 0..5 {
                let t = Instant::now();
                for _ in 0..iters { f(y); }
                best = best.min(t.elapsed().as_secs_f64() / iters as f64);
            }
            best
        };
        let mut scalar = |y: &mut [f64]| {
            for r in 0..nrows {
                y[r] = csr_row_scalar(&vals[row_ptr[r]..row_ptr[r+1]], &cols[row_ptr[r]..row_ptr[r+1]], &x);
            }
        };
        let ts = time(&mut scalar, &mut y);
        println!("--- {tag}: {nrows}x{ncols} len={row_len} scalar {:.3} ms", ts*1e3);
        for (pf, il) in [(0usize,1usize),(2,1),(4,1),(0,2),(0,4),(2,2),(2,4),(4,4)] {
            let mut f = |y: &mut [f64]| {
                let mut r = 0;
                if il == 4 {
                    while r + 4 <= nrows {
                        let rg = [(row_ptr[r],row_ptr[r+1]),(row_ptr[r+1],row_ptr[r+2]),(row_ptr[r+2],row_ptr[r+3]),(row_ptr[r+3],row_ptr[r+4])];
                        let o = unsafe { csr_rows_avx512::<4>(&rg, &vals, &cols, &x, pf) };
                        y[r..r+4].copy_from_slice(&o);
                        r += 4;
                    }
                } else if il == 2 {
                    while r + 2 <= nrows {
                        let rg = [(row_ptr[r],row_ptr[r+1]),(row_ptr[r+1],row_ptr[r+2])];
                        let o = unsafe { csr_rows_avx512::<2>(&rg, &vals, &cols, &x, pf) };
                        y[r..r+2].copy_from_slice(&o);
                        r += 2;
                    }
                }
                while r < nrows {
                    y[r] = unsafe { csr_rows_avx512::<1>(&[(row_ptr[r],row_ptr[r+1])], &vals, &cols, &x, pf) }[0];
                    r += 1;
                }
            };
            let t = time(&mut f, &mut y);
            println!("  csr v8 pf{pf} il{il}: {:8.4} ms  speedup {:5.2}x", t*1e3, ts/t);
        }
        // SELL c8
        let c = 8usize;
        let nch = nrows / c;
        let width = row_len;
        let mut pv = vec![0.0f64; nch*width*c];
        let mut pc = vec![0u32; nch*width*c];
        for ch in 0..nch { for lane in 0..c { let r = ch*c+lane; for j in 0..width {
            pv[ch*width*c + j*c + lane] = vals[row_ptr[r]+j];
            pc[ch*width*c + j*c + lane] = cols[row_ptr[r]+j];
        }}}
        let mut ssc = |y: &mut [f64]| {
            for ch in 0..nch {
                let base = ch*width*c;
                let mut acc = [0.0f64; 8];
                for s in 0..width { for l in 0..c { acc[l] += pv[base+s*c+l] * x[pc[base+s*c+l] as usize]; } }
                y[ch*c..ch*c+c].copy_from_slice(&acc);
            }
        };
        let tss = time(&mut ssc, &mut y);
        println!("  sell c8 scalar: {:8.4} ms", tss*1e3);
        for pf in [0usize, 2, 4, 8] {
            let mut f = |y: &mut [f64]| {
                for ch in 0..nch {
                    let base = ch*width*c;
                    let mut acc = [0.0f64; 8];
                    unsafe { sell_chunk_avx512_pf(&pv[base..base+width*c], &pc[base..base+width*c], &x, &mut acc, pf) };
                    y[ch*c..ch*c+c].copy_from_slice(&acc);
                }
            };
            let t = time(&mut f, &mut y);
            println!("  sell c8 pf{pf}:    {:8.4} ms  speedup {:5.2}x", t*1e3, tss/t);
        }
    }
}
