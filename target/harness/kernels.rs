use std::arch::x86_64::*;
use std::time::Instant;

// --- tiny deterministic rng (no deps) ---
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
    fn f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn csr_row_scalar(vals: &[f64], cols: &[u32], x: &[f64]) -> f64 {
    let mut acc = 0.0;
    for (v, &c) in vals.iter().zip(cols) {
        acc += v * x[c as usize];
    }
    acc
}

#[target_feature(enable = "avx512f")]
unsafe fn csr_rows_avx512<const R: usize>(
    ranges: &[(usize, usize); R],
    vals: &[f64],
    cols: &[u32],
    x: &[f64],
    pf: usize,
) -> [f64; R] {
    let dist = pf * 8;
    let mut acc = [_mm512_setzero_pd(); R];
    // Interleaved phase: all R rows advance one vector step per round.
    let mut steps = usize::MAX;
    for r in ranges.iter().take(R) {
        steps = steps.min((r.1 - r.0) / 8);
    }
    for s in 0..steps {
        for i in 0..R {
            let k = ranges[i].0 + s * 8;
            if dist > 0 && k + dist + 8 <= ranges[i].1 {
                let p = k + dist;
                for j in 0..8 {
                    _mm_prefetch::<_MM_HINT_T0>(
                        x.as_ptr().add(*cols.get_unchecked(p + j) as usize) as *const i8,
                    );
                }
            }
            let idx = _mm256_loadu_si256(cols.as_ptr().add(k) as *const __m256i);
            let xv = _mm512_i32gather_pd::<8>(idx, x.as_ptr());
            let vv = _mm512_loadu_pd(vals.as_ptr().add(k));
            acc[i] = _mm512_fmadd_pd(vv, xv, acc[i]);
        }
    }
    // Per-row remainder: leftover full steps, then a masked tail.
    let mut out = [0.0f64; R];
    for i in 0..R {
        let (k0, k1) = ranges[i];
        let mut k = k0 + steps * 8;
        let mut a = acc[i];
        while k + 8 <= k1 {
            if dist > 0 && k + dist + 8 <= k1 {
                let p = k + dist;
                for j in 0..8 {
                    _mm_prefetch::<_MM_HINT_T0>(
                        x.as_ptr().add(*cols.get_unchecked(p + j) as usize) as *const i8,
                    );
                }
            }
            let idx = _mm256_loadu_si256(cols.as_ptr().add(k) as *const __m256i);
            let xv = _mm512_i32gather_pd::<8>(idx, x.as_ptr());
            let vv = _mm512_loadu_pd(vals.as_ptr().add(k));
            a = _mm512_fmadd_pd(vv, xv, a);
            k += 8;
        }
        let rem = k1 - k;
        if rem > 0 {
            let m: __mmask8 = (1u8 << rem) - 1;
            let mut buf = [0u32; 8];
            buf[..rem].copy_from_slice(&cols[k..k1]);
            let idx = _mm256_loadu_si256(buf.as_ptr() as *const __m256i);
            let xv = _mm512_mask_i32gather_pd::<8>(_mm512_setzero_pd(), m, idx, x.as_ptr());
            let vv = _mm512_maskz_loadu_pd(m, vals.as_ptr().add(k));
            a = _mm512_fmadd_pd(vv, xv, a);
        }
        out[i] = _mm512_reduce_add_pd(a);
    }
    out
}

#[target_feature(enable = "avx512f")]
unsafe fn sell_chunk_avx512_pf(vals: &[f64], cols: &[u32], x: &[f64], acc: &mut [f64], pf: usize) {
    let steps = vals.len() / 8;
    let dist = pf * 8;
    let mut a = _mm512_loadu_pd(acc.as_ptr());
    for s in 0..steps {
        let base = s * 8;
        if dist > 0 && base + dist + 8 <= vals.len() {
            let p = base + dist;
            for j in 0..8 {
                _mm_prefetch::<_MM_HINT_T0>(
                    x.as_ptr().add(*cols.get_unchecked(p + j) as usize) as *const i8
                );
            }
        }
        let idx = _mm256_loadu_si256(cols.as_ptr().add(base) as *const __m256i);
        let xv = _mm512_i32gather_pd::<8>(idx, x.as_ptr());
        let vv = _mm512_loadu_pd(vals.as_ptr().add(base));
        a = _mm512_fmadd_pd(vv, xv, a);
    }
    _mm512_storeu_pd(acc.as_mut_ptr(), a);
}

/// Masked SELL chunk for heights 1..8 (c not in {4,8} dispatch case).
#[target_feature(enable = "avx512f")]
unsafe fn sell_chunk_avx512_masked(
    vals: &[f64],
    cols: &[u32],
    c: usize,
    x: &[f64],
    acc: &mut [f64],
    pf: usize,
) {
    let steps = vals.len() / c;
    if steps == 0 {
        return;
    }
    let m: __mmask8 = (1u16 << c) as u8 - 1;
    let dist = pf * c;
    let mut a = _mm512_maskz_loadu_pd(m, acc.as_ptr());
    // All but the last step may read a full 8-lane index block: the
    // inactive lanes land inside the next step's entries.
    for s in 0..steps - 1 {
        let base = s * c;
        if dist > 0 && base + dist + c <= vals.len() {
            let p = base + dist;
            for j in 0..c {
                _mm_prefetch::<_MM_HINT_T0>(
                    x.as_ptr().add(*cols.get_unchecked(p + j) as usize) as *const i8
                );
            }
        }
        let idx = _mm256_loadu_si256(cols.as_ptr().add(base) as *const __m256i);
        let xv = _mm512_mask_i32gather_pd::<8>(_mm512_setzero_pd(), m, idx, x.as_ptr());
        let vv = _mm512_maskz_loadu_pd(m, vals.as_ptr().add(base));
        a = _mm512_fmadd_pd(vv, xv, a);
    }
    let base = (steps - 1) * c;
    let mut buf = [0u32; 8];
    buf[..c].copy_from_slice(&cols[base..base + c]);
    let idx = _mm256_loadu_si256(buf.as_ptr() as *const __m256i);
    let xv = _mm512_mask_i32gather_pd::<8>(_mm512_setzero_pd(), m, idx, x.as_ptr());
    let vv = _mm512_maskz_loadu_pd(m, vals.as_ptr().add(base));
    a = _mm512_fmadd_pd(vv, xv, a);
    for l in 0..c {
        let mut t = [0.0f64; 8];
        _mm512_storeu_pd(t.as_mut_ptr(), a);
        acc[l] = t[l];
        break;
    }
    let mut t = [0.0f64; 8];
    _mm512_storeu_pd(t.as_mut_ptr(), a);
    acc[..c].copy_from_slice(&t[..c]);
}

fn ulp(a: f64, b: f64) -> u64 {
    if a == b {
        return 0;
    }
    fn key(x: f64) -> i64 {
        let b = x.to_bits() as i64;
        if b < 0 {
            i64::MIN.wrapping_add(b.wrapping_neg())
        } else {
            b
        }
    }
    key(a).abs_diff(key(b))
}

