// Harness: SELL-c8 chunk kernels vs the repo's exact unchecked scalar
// baseline (chunk_kernel::<8>), on an L2-resident x. Compares:
//   scalar   : repo chunk_kernel::<8> (get_unchecked, autovectorizable)
//   v8       : PR6 sell_chunk_avx512 (single acc chain)
//   v8+pair  : two chunks interleaved (two independent acc chains)
//   v8+pf    : single chain + software prefetch
#![allow(dead_code)]
use std::arch::x86_64::*;
use std::time::Instant;

struct Pack {
    c: usize,
    offsets: Vec<usize>, // per-chunk step offsets
    cols: Vec<u32>,
    vals: Vec<f64>,
    rows: Vec<u32>, // row_order
}

fn lcg(state: &mut u64) -> u64 {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *state >> 33
}

// Build a sigma-sorted-ish SELL-c8 pack: nrows rows with skewed lengths.
fn build(nrows: usize, ncols: usize, mean_len: usize, seed: u64) -> Pack {
    let c = 8usize;
    let mut s = seed;
    let mut lens: Vec<usize> = (0..nrows)
        .map(|_| {
            // skewed: 80% short, 20% long-ish
            let r = lcg(&mut s) % 100;
            if r < 80 { mean_len / 2 + (lcg(&mut s) as usize % mean_len) } else { mean_len * 2 + (lcg(&mut s) as usize % (mean_len * 2)) }
        })
        .collect();
    // sigma-sort within windows of 512
    let mut order: Vec<u32> = (0..nrows as u32).collect();
    for win in order.chunks_mut(512) {
        win.sort_by(|&a, &b| lens[b as usize].cmp(&lens[a as usize]));
    }
    let nchunks = (nrows + c - 1) / c;
    let mut offsets = vec![0usize; nchunks + 1];
    for k in 0..nchunks {
        let w = (0..c)
            .filter_map(|l| order.get(k * c + l))
            .map(|&r| lens[r as usize])
            .max()
            .unwrap_or(0);
        offsets[k + 1] = offsets[k] + w;
    }
    let total = offsets[nchunks] * c;
    let mut cols = vec![0u32; total];
    let mut vals = vec![0.0f64; total];
    for k in 0..nchunks {
        let base = offsets[k] * c;
        for l in 0..c {
            let Some(&r) = order.get(k * c + l) else { continue };
            for j in 0..lens[r as usize] {
                cols[base + j * c + l] = (lcg(&mut s) % ncols as u64) as u32;
                vals[base + j * c + l] = (lcg(&mut s) % 1000) as f64 / 500.0 - 1.0;
            }
        }
    }
    lens.clear();
    Pack { c, offsets, cols, vals, rows: order }
}

// Repo chunk_kernel::<8>: unchecked scalar, autovectorizable.
#[inline]
fn chunk_scalar(p: &Pack, x: &[f64], y: &mut [f64], k: usize) {
    const C: usize = 8;
    let w0 = p.offsets[k];
    let w1 = p.offsets[k + 1];
    let vals = &p.vals[w0 * C..w1 * C];
    let cols = &p.cols[w0 * C..w1 * C];
    let mut acc = [0.0f64; C];
    for (vrow, crow) in vals.chunks_exact(C).zip(cols.chunks_exact(C)) {
        for l in 0..C {
            unsafe {
                let c = *crow.get_unchecked(l) as usize;
                acc[l] += *vrow.get_unchecked(l) * *x.get_unchecked(c);
            }
        }
    }
    for l in 0..C {
        if let Some(&r) = p.rows.get(k * C + l) {
            y[r as usize] += acc[l];
        }
    }
}

#[target_feature(enable = "avx512f")]
unsafe fn sell8(vals: &[f64], cols: &[u32], x: &[f64], acc: &mut [f64]) {
    let steps = vals.len() / 8;
    let mut a = _mm512_loadu_pd(acc.as_ptr());
    for s in 0..steps {
        let base = s * 8;
        let idx = _mm256_loadu_si256(cols.as_ptr().add(base) as *const __m256i);
        let xv = _mm512_i32gather_pd::<8>(idx, x.as_ptr());
        let vv = _mm512_loadu_pd(vals.as_ptr().add(base));
        a = _mm512_fmadd_pd(vv, xv, a);
    }
    _mm512_storeu_pd(acc.as_mut_ptr(), a);
}

#[target_feature(enable = "avx512f")]
unsafe fn sell8_pf(vals: &[f64], cols: &[u32], x: &[f64], acc: &mut [f64], pf: usize) {
    let steps = vals.len() / 8;
    let mut a = _mm512_loadu_pd(acc.as_ptr());
    let dist = pf * 8;
    for s in 0..steps {
        let base = s * 8;
        if dist > 0 && base + dist + 8 <= vals.len() {
            for j in 0..8 {
                _mm_prefetch::<_MM_HINT_T0>(
                    x.as_ptr().add(*cols.get_unchecked(base + dist + j) as usize) as *const i8,
                );
            }
        }
        let idx = _mm256_loadu_si256(cols.as_ptr().add(base) as *const __m256i);
        let xv = _mm512_i32gather_pd::<8>(idx, x.as_ptr());
        let vv = _mm512_loadu_pd(vals.as_ptr().add(base));
        a = _mm512_fmadd_pd(vv, xv, a);
    }
    _mm512_storeu_pd(acc.as_mut_ptr(), a);
}

// Two chunks (possibly different widths) interleaved: two acc chains.
#[target_feature(enable = "avx512f")]
unsafe fn sell8_pair(
    v0: &[f64],
    c0: &[u32],
    v1: &[f64],
    c1: &[u32],
    x: &[f64],
    a0: &mut [f64],
    a1: &mut [f64],
) {
    let s0 = v0.len() / 8;
    let s1 = v1.len() / 8;
    let joint = s0.min(s1);
    let mut acc0 = _mm512_loadu_pd(a0.as_ptr());
    let mut acc1 = _mm512_loadu_pd(a1.as_ptr());
    for s in 0..joint {
        let b = s * 8;
        let i0 = _mm256_loadu_si256(c0.as_ptr().add(b) as *const __m256i);
        let i1 = _mm256_loadu_si256(c1.as_ptr().add(b) as *const __m256i);
        let x0 = _mm512_i32gather_pd::<8>(i0, x.as_ptr());
        let x1 = _mm512_i32gather_pd::<8>(i1, x.as_ptr());
        acc0 = _mm512_fmadd_pd(_mm512_loadu_pd(v0.as_ptr().add(b)), x0, acc0);
        acc1 = _mm512_fmadd_pd(_mm512_loadu_pd(v1.as_ptr().add(b)), x1, acc1);
    }
    for s in joint..s0 {
        let b = s * 8;
        let i0 = _mm256_loadu_si256(c0.as_ptr().add(b) as *const __m256i);
        let x0 = _mm512_i32gather_pd::<8>(i0, x.as_ptr());
        acc0 = _mm512_fmadd_pd(_mm512_loadu_pd(v0.as_ptr().add(b)), x0, acc0);
    }
    for s in joint..s1 {
        let b = s * 8;
        let i1 = _mm256_loadu_si256(c1.as_ptr().add(b) as *const __m256i);
        let x1 = _mm512_i32gather_pd::<8>(i1, x.as_ptr());
        acc1 = _mm512_fmadd_pd(_mm512_loadu_pd(v1.as_ptr().add(b)), x1, acc1);
    }
    _mm512_storeu_pd(a0.as_mut_ptr(), acc0);
    _mm512_storeu_pd(a1.as_mut_ptr(), acc1);
}

fn chunk_slices<'a>(p: &'a Pack, k: usize) -> (&'a [f64], &'a [u32]) {
    let w0 = p.offsets[k];
    let w1 = p.offsets[k + 1];
    (&p.vals[w0 * 8..w1 * 8], &p.cols[w0 * 8..w1 * 8])
}

fn scatter(p: &Pack, k: usize, acc: &[f64; 8], y: &mut [f64]) {
    for l in 0..8 {
        if let Some(&r) = p.rows.get(k * 8 + l) {
            y[r as usize] += acc[l];
        }
    }
}

fn run(p: &Pack, x: &[f64], y: &mut [f64], mode: usize, pf: usize) {
    let nchunks = p.offsets.len() - 1;
    y.iter_mut().for_each(|v| *v = 0.0);
    match mode {
        0 => {
            for k in 0..nchunks {
                chunk_scalar(p, x, y, k);
            }
        }
        1 => unsafe {
            for k in 0..nchunks {
                let (v, c) = chunk_slices(p, k);
                let mut acc = [0.0f64; 8];
                sell8(v, c, x, &mut acc);
                scatter(p, k, &acc, y);
            }
        },
        2 => unsafe {
            let mut k = 0;
            while k + 2 <= nchunks {
                let (v0, c0) = chunk_slices(p, k);
                let (v1, c1) = chunk_slices(p, k + 1);
                let mut a0 = [0.0f64; 8];
                let mut a1 = [0.0f64; 8];
                sell8_pair(v0, c0, v1, c1, x, &mut a0, &mut a1);
                scatter(p, k, &a0, y);
                scatter(p, k + 1, &a1, y);
                k += 2;
            }
            while k < nchunks {
                let (v, c) = chunk_slices(p, k);
                let mut acc = [0.0f64; 8];
                sell8(v, c, x, &mut acc);
                scatter(p, k, &acc, y);
                k += 1;
            }
        },
        _ => unsafe {
            for k in 0..nchunks {
                let (v, c) = chunk_slices(p, k);
                let mut acc = [0.0f64; 8];
                sell8_pf(v, c, x, &mut acc, pf);
                scatter(p, k, &acc, y);
            }
        },
    }
}

fn bench(p: &Pack, x: &[f64], name: &str, mode: usize, pf: usize, base: f64) -> f64 {
    let mut y = vec![0.0f64; p.rows.len()];
    // warm
    for _ in 0..3 {
        run(p, x, &mut y, mode, pf);
    }
    let iters = 60;
    let mut best = f64::MAX;
    for _ in 0..5 {
        let t = Instant::now();
        for _ in 0..iters {
            run(p, x, &mut y, mode, pf);
        }
        best = best.min(t.elapsed().as_secs_f64() / iters as f64);
    }
    let sp = if base > 0.0 { base / best } else { 1.0 };
    println!("  {name:>12}: {:8.1} us  speedup {:.2}x  (y[0]={:.3})", best * 1e6, sp, y[0]);
    best
}

fn parity(p: &Pack, x: &[f64]) {
    let mut y0 = vec![0.0f64; p.rows.len()];
    run(p, x, &mut y0, 0, 0);
    for (mode, pf, tag) in [(1, 0, "v8"), (2, 0, "pair"), (3, 4, "pf4")] {
        let mut y = vec![0.0f64; p.rows.len()];
        run(p, x, &mut y, mode, pf);
        let mut worst = 0u64;
        for (a, b) in y.iter().zip(&y0) {
            if a == b {
                continue;
            }
            let d = (a.to_bits() as i64).abs_diff(b.to_bits() as i64);
            worst = worst.max(d);
            assert!(d < 1024 || (a - b).abs() < 1e-9, "{tag}: {a} vs {b}");
        }
        println!("  parity {tag}: worst {worst} ulps");
    }
}

fn main() {
    let mut s = 7u64;
    for &(nrows, ncols, mean, tag) in &[
        (8192usize, 8192usize, 16usize, "L2x short (bench probe shape)"),
        (2048, 8192, 64, "L2x mid"),
        (2048, 65536, 256, "LLCx long"),
    ] {
        let p = build(nrows, ncols, mean, 42);
        let x: Vec<f64> = (0..ncols).map(|_| (lcg(&mut s) % 1000) as f64 / 500.0 - 1.0).collect();
        let nnz = p.offsets.last().unwrap() * 8;
        println!("== {tag}: {nrows}x{ncols}, padded nnz {nnz} ==");
        parity(&p, &x);
        let base = bench(&p, &x, "scalar", 0, 0, 0.0);
        bench(&p, &x, "v8", 1, 0, base);
        bench(&p, &x, "v8+pair", 2, 0, base);
        bench(&p, &x, "v8+pf4", 3, 4, base);
    }
}
