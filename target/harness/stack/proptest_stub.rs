//! Stub proptest: the proptest! macro swallows its block (those
//! property tests only run under cargo); plain #[test] fns in the
//! same modules still compile and execute.
#[macro_export]
macro_rules! proptest {
    ($($t:tt)*) => {};
}
pub mod prelude {
    pub use crate::proptest;
    pub struct ProptestConfig;
    impl ProptestConfig {
        pub fn with_cases(_cases: u32) -> Self {
            ProptestConfig
        }
    }
}
