//! Stub serde_json: typecheck-only; every call errs at runtime (the
//! harness runner skips serde round-trip tests).
#[derive(Debug)]
pub struct Error;
impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde_json stubbed out")
    }
}
pub fn to_string<T: ?Sized>(_v: &T) -> Result<String, Error> {
    Err(Error)
}
pub fn from_str<T>(_s: &str) -> Result<T, Error> {
    Err(Error)
}

impl std::error::Error for Error {}
