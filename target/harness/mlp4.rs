// Probe-faithful harness: RMAT MedSkew s13 d16 -> Sell-c-sigma(8, 512),
// repo-equivalent unchecked scalar chunk kernel vs avx512 variants.
#![allow(dead_code)]
use std::arch::x86_64::*;
use std::time::Instant;

fn lcg(state: &mut u64) -> u64 {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *state >> 33
}
fn unif(state: &mut u64) -> f64 {
    (lcg(state) as f64) / ((1u64 << 31) as f64)
}

struct Pack {
    offsets: Vec<usize>,
    cols: Vec<u32>,
    vals: Vec<f64>,
    rows: Vec<u32>,
}

// RMAT MedSkew sample + dedup -> per-row sorted column lists.
fn rmat(scale: u32, degree: usize, seed: u64) -> Vec<Vec<u32>> {
    let n = 1usize << scale;
    let (a, b, c, _d) = (0.46f64, 0.22f64, 0.22f64, 0.10f64);
    let mut s = seed;
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(n * degree);
    for _ in 0..n * degree {
        let (mut r, mut col) = (0u32, 0u32);
        for _ in 0..scale {
            let u = unif(&mut s);
            r <<= 1;
            col <<= 1;
            if u < a {
            } else if u < a + b {
                col |= 1;
            } else if u < a + b + c {
                r |= 1;
            } else {
                r |= 1;
                col |= 1;
            }
        }
        edges.push((r, col));
    }
    edges.sort_unstable();
    edges.dedup();
    let mut rows = vec![Vec::new(); n];
    for (r, c) in edges {
        rows[r as usize].push(c);
    }
    rows
}

fn pack_sell(rowlists: &[Vec<u32>], sigma: usize, seed: u64) -> Pack {
    let c = 8usize;
    let nrows = rowlists.len();
    let mut order: Vec<u32> = (0..nrows as u32).collect();
    for win in order.chunks_mut(sigma) {
        win.sort_by(|&a, &b| rowlists[b as usize].len().cmp(&rowlists[a as usize].len()));
    }
    let nchunks = (nrows + c - 1) / c;
    let mut offsets = vec![0usize; nchunks + 1];
    for k in 0..nchunks {
        let w = (0..c)
            .filter_map(|l| order.get(k * c + l))
            .map(|&r| rowlists[r as usize].len())
            .max()
            .unwrap_or(0);
        offsets[k + 1] = offsets[k] + w;
    }
    let total = offsets[nchunks] * c;
    let mut cols = vec![0u32; total];
    let mut vals = vec![0.0f64; total];
    let mut s = seed;
    for k in 0..nchunks {
        let base = offsets[k] * c;
        for l in 0..c {
            let Some(&r) = order.get(k * c + l) else { continue };
            for (j, &cc) in rowlists[r as usize].iter().enumerate() {
                cols[base + j * c + l] = cc;
                vals[base + j * c + l] = 0.5 + unif(&mut s);
            }
        }
    }
    Pack { offsets, cols, vals, rows: order }
}

#[inline]
fn chunk_scalar(p: &Pack, x: &[f64], y: &mut [f64], k: usize) {
    const C: usize = 8;
    let w0 = p.offsets[k];
    let w1 = p.offsets[k + 1];
    let vals = &p.vals[w0 * C..w1 * C];
    let cols = &p.cols[w0 * C..w1 * C];
    let mut acc = [0.0f64; C];
    for (vrow, crow) in vals.chunks_exact(C).zip(cols.chunks_exact(C)) {
        for l in 0..C {
            unsafe {
                let c = *crow.get_unchecked(l) as usize;
                acc[l] += *vrow.get_unchecked(l) * *x.get_unchecked(c);
            }
        }
    }
    for l in 0..C {
        if let Some(&r) = p.rows.get(k * C + l) {
            y[r as usize] += acc[l];
        }
    }
}

#[target_feature(enable = "avx512f")]
unsafe fn sell8_pf(vals: &[f64], cols: &[u32], x: &[f64], acc: &mut [f64], dist: usize) {
    let steps = vals.len() / 8;
    let mut a = _mm512_loadu_pd(acc.as_ptr());
    for s in 0..steps {
        let base = s * 8;
        if dist > 0 && base + dist + 8 <= vals.len() {
            for j in 0..8 {
                _mm_prefetch::<_MM_HINT_T0>(
                    x.as_ptr().add(*cols.get_unchecked(base + dist + j) as usize) as *const i8,
                );
            }
        }
        let idx = _mm256_loadu_si256(cols.as_ptr().add(base) as *const __m256i);
        let xv = _mm512_i32gather_pd::<8>(idx, x.as_ptr());
        let vv = _mm512_loadu_pd(vals.as_ptr().add(base));
        a = _mm512_fmadd_pd(vv, xv, a);
    }
    _mm512_storeu_pd(acc.as_mut_ptr(), a);
}

#[target_feature(enable = "avx512f")]
unsafe fn sell8_pair(
    v0: &[f64],
    c0: &[u32],
    v1: &[f64],
    c1: &[u32],
    x: &[f64],
    a0: &mut [f64],
    a1: &mut [f64],
) {
    let s0 = v0.len() / 8;
    let s1 = v1.len() / 8;
    let joint = s0.min(s1);
    let mut acc0 = _mm512_loadu_pd(a0.as_ptr());
    let mut acc1 = _mm512_loadu_pd(a1.as_ptr());
    for s in 0..joint {
        let b = s * 8;
        let i0 = _mm256_loadu_si256(c0.as_ptr().add(b) as *const __m256i);
        let i1 = _mm256_loadu_si256(c1.as_ptr().add(b) as *const __m256i);
        let x0 = _mm512_i32gather_pd::<8>(i0, x.as_ptr());
        let x1 = _mm512_i32gather_pd::<8>(i1, x.as_ptr());
        acc0 = _mm512_fmadd_pd(_mm512_loadu_pd(v0.as_ptr().add(b)), x0, acc0);
        acc1 = _mm512_fmadd_pd(_mm512_loadu_pd(v1.as_ptr().add(b)), x1, acc1);
    }
    for s in joint..s0 {
        let b = s * 8;
        let i0 = _mm256_loadu_si256(c0.as_ptr().add(b) as *const __m256i);
        let x0 = _mm512_i32gather_pd::<8>(i0, x.as_ptr());
        acc0 = _mm512_fmadd_pd(_mm512_loadu_pd(v0.as_ptr().add(b)), x0, acc0);
    }
    for s in joint..s1 {
        let b = s * 8;
        let i1 = _mm256_loadu_si256(c1.as_ptr().add(b) as *const __m256i);
        let x1 = _mm512_i32gather_pd::<8>(i1, x.as_ptr());
        acc1 = _mm512_fmadd_pd(_mm512_loadu_pd(v1.as_ptr().add(b)), x1, acc1);
    }
    _mm512_storeu_pd(a0.as_mut_ptr(), acc0);
    _mm512_storeu_pd(a1.as_mut_ptr(), acc1);
}

fn chunk_slices<'a>(p: &'a Pack, k: usize) -> (&'a [f64], &'a [u32]) {
    let w0 = p.offsets[k];
    let w1 = p.offsets[k + 1];
    (&p.vals[w0 * 8..w1 * 8], &p.cols[w0 * 8..w1 * 8])
}
fn scatter(p: &Pack, k: usize, acc: &[f64; 8], y: &mut [f64]) {
    for l in 0..8 {
        if let Some(&r) = p.rows.get(k * 8 + l) {
            y[r as usize] += acc[l];
        }
    }
}

fn run(p: &Pack, x: &[f64], y: &mut [f64], mode: usize, pf: usize) {
    let nchunks = p.offsets.len() - 1;
    y.iter_mut().for_each(|v| *v = 0.0);
    match mode {
        0 => {
            for k in 0..nchunks {
                chunk_scalar(p, x, y, k);
            }
        }
        1 => unsafe {
            for k in 0..nchunks {
                let (v, c) = chunk_slices(p, k);
                let mut acc = [0.0f64; 8];
                sell8_pf(v, c, x, &mut acc, pf * 8);
                scatter(p, k, &acc, y);
            }
        },
        _ => unsafe {
            let mut k = 0;
            while k + 2 <= nchunks {
                let (v0, c0) = chunk_slices(p, k);
                let (v1, c1) = chunk_slices(p, k + 1);
                let mut a0 = [0.0f64; 8];
                let mut a1 = [0.0f64; 8];
                sell8_pair(v0, c0, v1, c1, x, &mut a0, &mut a1);
                scatter(p, k, &a0, y);
                scatter(p, k + 1, &a1, y);
                k += 2;
            }
            while k < nchunks {
                let (v, c) = chunk_slices(p, k);
                let mut acc = [0.0f64; 8];
                sell8_pf(v, c, x, &mut acc, 0);
                scatter(p, k, &acc, y);
                k += 1;
            }
        },
    }
}

fn bench(p: &Pack, x: &[f64], name: &str, mode: usize, pf: usize, base: f64) -> f64 {
    let mut y = vec![0.0f64; p.rows.len()];
    for _ in 0..3 {
        run(p, x, &mut y, mode, pf);
    }
    let iters = 100;
    let mut best = f64::MAX;
    for _ in 0..7 {
        let t = Instant::now();
        for _ in 0..iters {
            run(p, x, &mut y, mode, pf);
        }
        best = best.min(t.elapsed().as_secs_f64() / iters as f64);
    }
    let sp = if base > 0.0 { base / best } else { 1.0 };
    println!("  {name:>10}: {:8.1} us  speedup {:.2}x", best * 1e6, sp);
    best
}

fn main() {
    let rows = rmat(13, 16, 42);
    let nnz: usize = rows.iter().map(|r| r.len()).sum();
    let p = pack_sell(&rows, 512, 7);
    let padded = p.offsets.last().unwrap() * 8;
    println!("rmat s13 d16: nnz {nnz}, padded {padded}");
    let mut s = 99u64;
    let x: Vec<f64> = (0..rows.len()).map(|_| 0.5 + unif(&mut s)).collect();
    let base = bench(&p, &x, "scalar", 0, 0, 0.0);
    bench(&p, &x, "v8", 1, 0, base);
    bench(&p, &x, "v8+pf2", 1, 2, base);
    bench(&p, &x, "v8+pf4", 1, 4, base);
    bench(&p, &x, "v8+pair", 2, 0, base);
}

// ---- appended experiments: split-chain and quad interleave ----
