#!/usr/bin/env bash
# Offline build + test harness for air-gapped hosts.
#
# `cargo build` needs the registry to resolve serde/serde_json/rayon/
# rand/proptest even though every runtime path in this workspace is
# dependency-free. This script compiles the workspace with plain
# `rustc` against the stub crates in this directory (no-op derives,
# minimal trait markers), in dependency order, then builds and runs the
# unit-test binaries. It is the tier-1 fallback when the network is
# unavailable; with a registry, prefer `cargo build --release &&
# cargo test -q`.
#
# Usage: tools/harness/build.sh [--no-tests]
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/../.." && pwd)"
HARNESS="$ROOT/tools/harness"
OUT="$ROOT/target/harness/stack"
mkdir -p "$OUT"
cd "$OUT"

RUSTC=${RUSTC:-rustc}
FLAGS=(--edition 2021 -C opt-level=2 -C debuginfo=0 -A dead_code)

# --- stub dependency crates -----------------------------------------
$RUSTC "${FLAGS[@]}" --crate-type proc-macro --crate-name serde_derive \
    "$HARNESS/serde_derive_stub.rs" -o libserde_derive.so
$RUSTC "${FLAGS[@]}" --crate-type rlib --crate-name serde \
    --extern serde_derive=libserde_derive.so \
    "$HARNESS/serde_stub.rs" -o libserde.rlib
$RUSTC "${FLAGS[@]}" --crate-type rlib --crate-name serde_json \
    "$HARNESS/serde_json_stub.rs" -o libserde_json.rlib
$RUSTC "${FLAGS[@]}" --crate-type rlib --crate-name rand \
    "$HARNESS/rand_stub.rs" -o librand.rlib
$RUSTC "${FLAGS[@]}" --crate-type rlib --crate-name rayon \
    "$HARNESS/rayon_stub.rs" -o librayon.rlib
$RUSTC "${FLAGS[@]}" --crate-type rlib --crate-name proptest \
    "$HARNESS/proptest_stub.rs" -o libproptest.rlib

STUBS=(--extern serde=libserde.rlib --extern serde_json=libserde_json.rlib
       --extern rand=librand.rlib --extern rayon=librayon.rlib
       --extern proptest=libproptest.rlib -L "$OUT")

# --- workspace crates, dependency order ------------------------------
build_crate() { # name path extra-externs...
    local name="$1" path="$2"; shift 2
    $RUSTC "${FLAGS[@]}" --crate-type rlib --crate-name "$name" \
        "${STUBS[@]}" "$@" "$ROOT/$path" -o "lib$name.rlib"
}

build_crate wise_trace    crates/trace/src/lib.rs
build_crate wise_matrix   crates/matrix/src/lib.rs   --extern wise_trace=libwise_trace.rlib
build_crate wise_gen      crates/gen/src/lib.rs      --extern wise_trace=libwise_trace.rlib --extern wise_matrix=libwise_matrix.rlib
build_crate wise_kernels  crates/kernels/src/lib.rs  --extern wise_trace=libwise_trace.rlib --extern wise_matrix=libwise_matrix.rlib
build_crate wise_features crates/features/src/lib.rs --extern wise_trace=libwise_trace.rlib --extern wise_matrix=libwise_matrix.rlib --extern wise_kernels=libwise_kernels.rlib
build_crate wise_perf     crates/perf/src/lib.rs     --extern wise_trace=libwise_trace.rlib --extern wise_matrix=libwise_matrix.rlib --extern wise_kernels=libwise_kernels.rlib --extern wise_features=libwise_features.rlib
build_crate wise_ml       crates/ml/src/lib.rs       --extern wise_trace=libwise_trace.rlib
build_crate wise_core     crates/core/src/lib.rs     --extern wise_trace=libwise_trace.rlib --extern wise_matrix=libwise_matrix.rlib --extern wise_gen=libwise_gen.rlib --extern wise_kernels=libwise_kernels.rlib --extern wise_features=libwise_features.rlib --extern wise_perf=libwise_perf.rlib --extern wise_ml=libwise_ml.rlib
build_crate wise_bench    crates/bench/src/lib.rs    --extern wise_trace=libwise_trace.rlib --extern wise_matrix=libwise_matrix.rlib --extern wise_gen=libwise_gen.rlib --extern wise_kernels=libwise_kernels.rlib --extern wise_features=libwise_features.rlib --extern wise_perf=libwise_perf.rlib --extern wise_ml=libwise_ml.rlib --extern wise_core=libwise_core.rlib

ALL=(--extern wise_trace=libwise_trace.rlib --extern wise_matrix=libwise_matrix.rlib
     --extern wise_gen=libwise_gen.rlib --extern wise_kernels=libwise_kernels.rlib
     --extern wise_features=libwise_features.rlib --extern wise_perf=libwise_perf.rlib
     --extern wise_ml=libwise_ml.rlib --extern wise_core=libwise_core.rlib
     --extern wise_bench=libwise_bench.rlib)

# --- bins ------------------------------------------------------------
$RUSTC "${FLAGS[@]}" --crate-name bench_regress "${STUBS[@]}" "${ALL[@]}" \
    "$ROOT/crates/bench/src/bin/bench_regress.rs" -o bench_regress_bin
$RUSTC "${FLAGS[@]}" --crate-name check_trace "${STUBS[@]}" \
    --extern wise_trace=libwise_trace.rlib \
    "$ROOT/crates/trace/src/bin/check_trace.rs" -o bin_check_trace
$RUSTC "${FLAGS[@]}" --crate-name wise_top "${STUBS[@]}" "${ALL[@]}" \
    "$ROOT/crates/bench/src/bin/wise_top.rs" -o bin_wise_top
$RUSTC "${FLAGS[@]}" --crate-name quickstart "${STUBS[@]}" "${ALL[@]}" \
    "$ROOT/examples/quickstart.rs" -o bin_quickstart

[ "${1:-}" = "--no-tests" ] && exit 0

# --- unit tests ------------------------------------------------------
# Unit cases that round-trip through *real* serde/serde_json are
# skipped under the stubs (libtest substring filters); the cargo
# tier-1 run covers them.
unit_skips() { # crate name -> stub-only --skip filters
    case "$1" in
        wise_kernels) echo "--skip defaults_to_auto --skip mlp_knobs_round_trip" ;;
        wise_features) echo "--skip config_deserializes_without_threads_field" ;;
        wise_perf) echo "--skip simd_fields_default_for_pre_simd_json" ;;
        wise_ml) echo "--skip serde_roundtrip" ;;
        wise_core) echo "--skip serde --skip save_load_roundtrip \
                         --skip serializes_without_cascade_key --skip json_loads_without_gate" ;;
    esac
}

run_unit() { # name path extra-externs...
    local name="$1" path="$2"; shift 2
    $RUSTC "${FLAGS[@]}" --test --crate-name "${name}_unit" "${STUBS[@]}" "$@" \
        "$ROOT/$path" -o "${name}_unit"
    # shellcheck disable=SC2046 # word-splitting the filters is intended
    "./${name}_unit" -q $(unit_skips "$name")
}

run_unit wise_trace    crates/trace/src/lib.rs
run_unit wise_matrix   crates/matrix/src/lib.rs   --extern wise_trace=libwise_trace.rlib
run_unit wise_gen      crates/gen/src/lib.rs      --extern wise_trace=libwise_trace.rlib --extern wise_matrix=libwise_matrix.rlib
run_unit wise_kernels  crates/kernels/src/lib.rs  --extern wise_trace=libwise_trace.rlib --extern wise_matrix=libwise_matrix.rlib --extern wise_gen=libwise_gen.rlib
run_unit wise_features crates/features/src/lib.rs --extern wise_trace=libwise_trace.rlib --extern wise_matrix=libwise_matrix.rlib --extern wise_kernels=libwise_kernels.rlib --extern wise_gen=libwise_gen.rlib
run_unit wise_perf     crates/perf/src/lib.rs     --extern wise_trace=libwise_trace.rlib --extern wise_matrix=libwise_matrix.rlib --extern wise_kernels=libwise_kernels.rlib --extern wise_features=libwise_features.rlib --extern wise_gen=libwise_gen.rlib
run_unit wise_ml       crates/ml/src/lib.rs       --extern wise_trace=libwise_trace.rlib
run_unit wise_core     crates/core/src/lib.rs     --extern wise_trace=libwise_trace.rlib --extern wise_matrix=libwise_matrix.rlib --extern wise_gen=libwise_gen.rlib --extern wise_kernels=libwise_kernels.rlib --extern wise_features=libwise_features.rlib --extern wise_perf=libwise_perf.rlib --extern wise_ml=libwise_ml.rlib
run_unit wise_bench    crates/bench/src/lib.rs    "${ALL[@]:0:16}"

# --- integration tests (one process each) ----------------------------
# Cases that exercise *real* serde/serde_json round-trips cannot run
# against the stub crates (to_string/from_str are Err-returning
# no-ops); the cargo tier-1 run covers them. Binaries where *every*
# case round-trips are excluded below; binaries with a few such cases
# get libtest `--skip` substring filters.
run_itest() { # out-name path [libtest-args...]
    local name="$1" path="$2"; shift 2
    $RUSTC "${FLAGS[@]}" --test --crate-name "$name" "${STUBS[@]}" "${ALL[@]}" \
        "$ROOT/$path" -o "$name"
    "./$name" -q "$@"
}

itest_skips() { # basename -> stub-only --skip filters
    case "$1" in
        cascade_parity) echo "--skip bit_exact --skip round_trips" ;;
    esac
}

for t in "$ROOT"/crates/trace/tests/*.rs; do
    base="$(basename "$t" .rs)"
    # chrome_roundtrip needs serde_json::Value (real crate only).
    [ "$base" = chrome_roundtrip ] && continue
    # shellcheck disable=SC2046 # word-splitting the filters is intended
    run_itest "t_$base" "${t#"$ROOT"/}" $(itest_skips "$base")
done
for t in "$ROOT"/tests/*.rs; do
    base="$(basename "$t" .rs)"
    # every tree_parity case asserts via a serde round-trip.
    [ "$base" = tree_parity ] && continue
    run_itest "rt_$base" "${t#"$ROOT"/}" $(itest_skips "$base")
done

echo "harness: all builds and tests passed"
