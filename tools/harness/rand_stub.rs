//! Stub rand with the exact API surface the workspace uses:
//! StdRng::seed_from_u64, gen::<f64>(), gen_range(Range<{f64,u32,usize,i64}>),
//! SliceRandom::shuffle. Real (splitmix64) PRNG so tests can execute;
//! the stream differs from upstream rand, which the tests tolerate.
pub mod rngs {
    pub struct StdRng {
        pub(crate) s: u64,
    }
    impl StdRng {
        pub(crate) fn next_u64(&mut self) -> u64 {
            self.s = self.s.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}
impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng { s: seed ^ 0xD1B54A32D192ED03 }
    }
}

pub trait Standard: Sized {
    fn make(u: u64) -> Self;
}
impl Standard for f64 {
    fn make(u: u64) -> f64 {
        (u >> 11) as f64 / (1u64 << 53) as f64
    }
}
impl Standard for u64 {
    fn make(u: u64) -> u64 {
        u
    }
}
impl Standard for u32 {
    fn make(u: u64) -> u32 {
        (u >> 32) as u32
    }
}

pub trait SampleRange<T> {
    fn sample(self, u: u64) -> T;
}
impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample(self, u: u64) -> f64 {
        self.start + f64::make(u) * (self.end - self.start)
    }
}
macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, u: u64) -> $t {
                let span = (self.end - self.start) as u64;
                self.start + (u % span.max(1)) as $t
            }
        }
    )*};
}
int_range!(u32, usize, u64, i64, i32, u8);

pub trait Rng {
    fn next_word(&mut self) -> u64;
    fn gen<T: Standard>(&mut self) -> T {
        T::make(self.next_word())
    }
    fn gen_range<T, R: SampleRange<T>>(&mut self, r: R) -> T {
        r.sample(self.next_word())
    }
}
impl Rng for rngs::StdRng {
    fn next_word(&mut self) -> u64 {
        self.next_u64()
    }
}

pub mod seq {
    pub trait SliceRandom {
        fn shuffle<R: crate::Rng>(&mut self, rng: &mut R);
    }
    impl<T> SliceRandom for [T] {
        fn shuffle<R: crate::Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_word() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}
