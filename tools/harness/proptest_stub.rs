//! Stub proptest: the proptest! macro swallows its block (those
//! property tests only run under cargo); plain #[test] fns in the
//! same modules still compile and execute. Strategy-constructor items
//! that live *outside* the macro (e.g. an `arb_*` helper returning
//! `impl Strategy`) still have to type-check, so a minimal never-run
//! Strategy surface is provided.
#[macro_export]
macro_rules! proptest {
    ($($t:tt)*) => {};
}

pub mod test_runner {
    /// Never constructed by the stub (the macro that would drive it is
    /// swallowed); only here so helper fns type-check.
    pub struct TestRng(());
    impl TestRng {
        pub fn next_u64(&mut self) -> u64 {
            0
        }
    }
}

pub mod strategy {
    pub trait Strategy: Sized {
        type Value;
        fn prop_perturb<O, F>(self, f: F) -> Perturb<Self, F>
        where
            F: Fn(Self::Value, crate::test_runner::TestRng) -> O,
        {
            Perturb(self, f)
        }
    }

    pub struct Just<T>(pub T);
    impl<T> Strategy for Just<T> {
        type Value = T;
    }

    pub struct Perturb<S, F>(S, F);
    impl<S, O, F> Strategy for Perturb<S, F>
    where
        S: Strategy,
        F: Fn(S::Value, crate::test_runner::TestRng) -> O,
    {
        type Value = O;
    }
}

pub mod prelude {
    pub use crate::proptest;
    pub use crate::strategy::{Just, Strategy};
    pub struct ProptestConfig;
    impl ProptestConfig {
        pub fn with_cases(_cases: u32) -> Self {
            ProptestConfig
        }
    }
}
