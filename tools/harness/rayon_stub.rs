//! Stub rayon: sequential std iterators behind the par_* names.
pub mod prelude {
    pub use crate::iter_ext::MapInitExt;
    pub trait IntoParallelIterator: Sized + IntoIterator {
        fn into_par_iter(self) -> <Self as IntoIterator>::IntoIter {
            self.into_iter()
        }
    }
    impl<T: IntoIterator + Sized> IntoParallelIterator for T {}

    pub trait ParallelSlice<T> {
        fn par_iter(&self) -> std::slice::Iter<'_, T>;
    }
    impl<T> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }
    }

    pub trait ParallelSliceMut<T> {
        fn par_chunks_mut(&mut self, n: usize) -> std::slice::ChunksMut<'_, T>;
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
    }
    impl<T> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, n: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(n)
        }
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.iter_mut()
        }
    }
}

pub mod iter_ext {
    pub trait MapInitExt: Iterator + Sized {
        fn map_init<St, G, F, R>(self, mut init: G, mut f: F) -> impl Iterator<Item = R>
        where
            G: FnMut() -> St,
            F: FnMut(&mut St, Self::Item) -> R,
        {
            let mut st = init();
            self.map(move |x| f(&mut st, x))
        }
    }
    impl<I: Iterator> MapInitExt for I {}
}
