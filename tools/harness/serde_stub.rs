//! Stub serde: blanket-implemented marker traits + no-op derives.
pub use serde_derive::{Deserialize, Serialize};
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}
pub mod de {
    pub trait DeserializeOwned {}
    impl<T> DeserializeOwned for T {}
}
