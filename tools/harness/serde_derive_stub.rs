//! Stub serde_derive: accepts the derives + #[serde(...)] attrs, emits
//! nothing. Enough to typecheck/link the workspace libs offline.
extern crate proc_macro;
use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
