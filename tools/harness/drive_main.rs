fn main() {
    wise_trace::set_enabled(true);
    for name in ["features.extract", "kernel.convert", "kernel.spmv", "estimate.batch", "label.corpus", "train.registry", "ml.fit", "pipeline.select"] {
        let _s = wise_trace::span(name);
        std::hint::black_box(0);
    }
    wise_trace::counter("kernel.spmv.nnz", 1000);
    let events = wise_trace::take_events();
    wise_trace::write_trace_files(&events, std::path::Path::new("/tmp/drive_trace.json")).unwrap();
}
