//! Stub serde_json: typecheck-only; every call errs at runtime (the
//! harness runner skips serde round-trip tests).
#[derive(Debug)]
pub struct Error;
impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde_json stubbed out")
    }
}
pub fn to_string<T: ?Sized>(_v: &T) -> Result<String, Error> {
    Err(Error)
}
pub fn from_str<T>(_s: &str) -> Result<T, Error> {
    Err(Error)
}

/// Typecheck-only document model: never constructed (every parse errs
/// above), so the accessors can all return empty.
pub struct Value(());
impl Value {
    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        None
    }
}

pub struct Map(());
impl Map {
    pub fn remove(&mut self, _key: &str) -> Option<Value> {
        None
    }
}

pub fn from_value<T>(_v: Value) -> Result<T, Error> {
    Err(Error)
}

impl std::error::Error for Error {}
